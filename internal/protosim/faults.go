package protosim

import (
	"fmt"
	"sync"
	"time"

	"dosgi/internal/remote"
)

// faultInjector sits between the event brokers and the wire: every
// server-side Pusher is wrapped in a stable faultyPusher whose Push can
// silently discard frames on demand. A dropped push is counted as sent
// by the broker, so the subscriber observes a genuine sequence gap —
// exactly the wire condition Replay and resync exist to heal — without
// touching broker internals.
type faultInjector struct {
	mu       sync.Mutex
	wrapped  map[remote.Pusher]*faultyPusher
	dropNext int
	dropAll  bool
	dropped  uint64
}

func newFaultInjector() *faultInjector {
	return &faultInjector{wrapped: make(map[remote.Pusher]*faultyPusher)}
}

// wrap returns the stable wrapper of p. Stability matters: the broker
// keys subscriptions by Pusher identity, so the same underlying
// connection must always present the same wrapper.
func (f *faultInjector) wrap(p remote.Pusher) remote.Pusher {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.wrapped[p]
	if !ok {
		w = &faultyPusher{inner: p, faults: f}
		f.wrapped[p] = w
	}
	return w
}

// shouldDrop consumes one drop token if any are armed.
func (f *faultInjector) shouldDrop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropAll {
		f.dropped++
		return true
	}
	if f.dropNext > 0 {
		f.dropNext--
		f.dropped++
		return true
	}
	return false
}

func (f *faultInjector) droppedCount() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// faultyPusher is the comparable per-connection wrapper.
type faultyPusher struct {
	inner  remote.Pusher
	faults *faultInjector
}

// Push implements remote.Pusher, discarding the frame when a fault is
// armed. Returning nil keeps the broker's bookkeeping (sent watermark,
// ring) identical to a delivered push — the loss is invisible until the
// subscriber sees the sequence gap.
func (p *faultyPusher) Push(frame []byte) error {
	if p.faults.shouldDrop() {
		return nil
	}
	return p.inner.Push(frame)
}

// faultHandler injects the pusher wrapper into the server handler chain.
type faultHandler struct {
	inner  remote.PushHandler
	faults *faultInjector
}

// Serve implements remote.Handler.
func (h *faultHandler) Serve(req *remote.Request) *remote.Response {
	return h.inner.Serve(req)
}

// ServePush implements remote.PushHandler.
func (h *faultHandler) ServePush(req *remote.Request, push remote.Pusher) *remote.Response {
	return h.inner.ServePush(req, h.faults.wrap(push))
}

// DropPushes arms the injector to silently discard the next n event
// pushes (across all subscriptions and both brokers). Subscribers heal
// the resulting gaps via Replay — the directive behind FAULT DROP.
func (s *Sim) DropPushes(n int) {
	s.faults.mu.Lock()
	s.faults.dropNext += n
	s.faults.mu.Unlock()
}

// DroppedPushes reports how many pushes the injector has discarded.
func (s *Sim) DroppedPushes() uint64 { return s.faults.droppedCount() }

// RollWindows forces every subscription's replay window to roll past
// its gap: with all pushes suppressed, it publishes ring+2 MODIFIED
// events, so a later Replay from the pre-roll sequence misses the ring
// and subscribers must fall back to a full resync. Returns the number
// of events published — the directive behind FAULT ROLL.
func (s *Sim) RollWindows() int {
	n := s.cfg.ReplayWindow + 2
	s.faults.mu.Lock()
	s.faults.dropAll = true
	s.faults.mu.Unlock()
	for i := 0; i < n; i++ {
		s.mu.Lock()
		ev, ok := s.randomLiveEndpointLocked()
		s.mu.Unlock()
		if !ok {
			ev = remote.ServiceEvent{Service: "echo", Node: "sim", Addr: s.remoteAddr}
		}
		ev.Type = remote.ServiceModified
		s.broker.Publish(ev)
	}
	s.faults.mu.Lock()
	s.faults.dropAll = false
	s.faults.mu.Unlock()
	return n
}

// SetStormRate retunes the synthetic event storm to rate events/second
// (0 stops it). The storm publishes MODIFIED re-announcements of live
// replicas, so the directory a converged subscriber holds is unchanged
// by any storm volume — convergence stays assertable.
func (s *Sim) SetStormRate(rate float64) {
	const tick = 20 * time.Millisecond
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.stormRate = rate
	s.stormCarry = 0
	if s.stormTimer != nil {
		s.stormTimer.Cancel()
		s.stormTimer = nil
	}
	if rate <= 0 {
		return
	}
	s.stormTimer = s.sched.Every(tick, func() {
		s.mu.Lock()
		want := s.stormRate*tick.Seconds() + s.stormCarry
		n := int(want)
		s.stormCarry = want - float64(n)
		evs := make([]remote.ServiceEvent, 0, n)
		for i := 0; i < n; i++ {
			ev, ok := s.randomLiveEndpointLocked()
			if !ok {
				break
			}
			ev.Type = remote.ServiceModified
			evs = append(evs, ev)
		}
		s.mu.Unlock()
		for _, ev := range evs {
			s.broker.Publish(ev)
		}
	})
}

// StormRate returns the current storm rate in events/second.
func (s *Sim) StormRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stormRate
}

// KillNode takes a fake node down hard: its listener (if any) closes,
// every endpoint it held leaves the directory with an UNREGISTERING
// event, its artifact holdings become unreachable, and its health
// records are withdrawn — the directive behind FAULT KILL.
func (s *Sim) KillNode(name string) error {
	s.mu.Lock()
	n, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("protosim: unknown node %q", name)
	}
	if n.state == nodeDead {
		s.mu.Unlock()
		return fmt.Errorf("protosim: node %s already dead", name)
	}
	n.state = nodeDead
	srv := n.srv
	n.srv = nil
	evs := make([]remote.ServiceEvent, 0, len(n.services))
	for _, svc := range n.services {
		delete(s.endpoints[svc], name)
		evs = append(evs, remote.ServiceEvent{
			Type: remote.ServiceUnregistering, Service: svc, Node: name, Addr: n.addr,
		})
	}
	var healthEvs []remote.ServiceEvent
	for _, comp := range healthComponents {
		key := comp + "@" + name
		prev, known := s.healthView[key]
		if !known {
			continue
		}
		delete(s.healthView, key)
		prev.Type = remote.ServiceUnregistering
		s.noteAlertLocked(prev)
		healthEvs = append(healthEvs, prev)
	}
	s.mu.Unlock()

	if srv != nil {
		srv.Close()
	}
	for _, ev := range evs {
		s.broker.Publish(ev)
	}
	for _, ev := range healthEvs {
		s.healthBroker.Publish(ev)
	}
	return nil
}

// ReviveNode brings a killed node back: endpoints re-register, health
// records return OK, and (for listener nodes) the original address is
// re-bound — the directive behind FAULT REVIVE.
func (s *Sim) ReviveNode(name string) error {
	s.mu.Lock()
	n, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("protosim: unknown node %q", name)
	}
	if n.state != nodeDead {
		s.mu.Unlock()
		return fmt.Errorf("protosim: node %s is not dead", name)
	}
	n.state = nodeLive
	addr := n.addr
	relisten := n.listener
	evs := make([]remote.ServiceEvent, 0, len(n.services))
	for _, svc := range n.services {
		if s.endpoints[svc] == nil {
			s.endpoints[svc] = make(map[string]struct{})
		}
		s.endpoints[svc][name] = struct{}{}
		evs = append(evs, remote.ServiceEvent{
			Type: remote.ServiceRegistered, Service: svc, Node: name, Addr: addr,
		})
	}
	var healthEvs []remote.ServiceEvent
	for _, comp := range healthComponents {
		ev := remote.ServiceEvent{
			Type: remote.ServiceRegistered, Service: comp, Node: name, Addr: "OK",
		}
		s.healthView[comp+"@"+name] = remote.ServiceEvent{
			Service: comp, Node: name, Addr: "OK",
		}
		s.noteAlertLocked(ev)
		healthEvs = append(healthEvs, ev)
	}
	s.mu.Unlock()

	if relisten {
		if err := s.listenNode(n, addr); err != nil {
			return err
		}
	}
	for _, ev := range evs {
		s.broker.Publish(ev)
	}
	for _, ev := range healthEvs {
		s.healthBroker.Publish(ev)
	}
	return nil
}

// PartitionNode cuts a fake node off the network without killing it:
// its listener closes so dials fail, but its directory records and
// health view stay — the asymmetry that distinguishes a partition from
// a crash. The directive behind FAULT PARTITION.
func (s *Sim) PartitionNode(name string) error {
	s.mu.Lock()
	n, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("protosim: unknown node %q", name)
	}
	if n.state != nodeLive {
		s.mu.Unlock()
		return fmt.Errorf("protosim: node %s is %s", name, n.state)
	}
	n.state = nodePartitioned
	srv := n.srv
	n.srv = nil
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	return nil
}

// HealNode reconnects a partitioned node — the directive behind
// FAULT HEAL.
func (s *Sim) HealNode(name string) error {
	s.mu.Lock()
	n, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("protosim: unknown node %q", name)
	}
	if n.state != nodePartitioned {
		s.mu.Unlock()
		return fmt.Errorf("protosim: node %s is %s", name, n.state)
	}
	n.state = nodeLive
	addr := n.addr
	relisten := n.listener
	s.mu.Unlock()
	if relisten {
		return s.listenNode(n, addr)
	}
	return nil
}
