package protosim

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"dosgi/internal/provision"
	"dosgi/internal/remote"
	"dosgi/internal/services"
)

// The simulator's admin plane speaks the same line protocol dosgid does
// — one command per connection line, response lines terminated by a
// final "OK ..." or "ERR ..." — so dosgictl drives a simulator with no
// code changes. Verbs that read cluster state (STATUS, EXPORTS, CALL,
// SUBSCRIBE, REPO, METRICS, TRACE, HEALTH, ALERTS) behave like the
// daemon's; lifecycle verbs that need a real framework (CREATE, DEPLOY,
// ...) answer ERR; and the simulator adds NODES plus the FAULT
// directive family documented in docs/PROTOCOL.md annex A.

// simSupportedVerbs is printed on an unknown command.
const simSupportedVerbs = "STATUS NODES EXPORTS CALL SUBSCRIBE REPO METRICS TRACE HEALTH ALERTS FAULT QUIT"

// subscribeTimeout bounds how long SUBSCRIBE waits for the requested
// event count before answering with what arrived.
const subscribeTimeout = 30 * time.Second

// serveAdmin accepts admin connections until the listener closes.
func (s *Sim) serveAdmin() {
	for {
		conn, err := s.adminLn.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.adminConns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Sim) serve(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.adminConns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	// Mirror dosgid's cap: a CALL argument may be as large as a request
	// frame allows; the 64 KiB Scanner default would drop the connection.
	sc.Buffer(make([]byte, 64<<10), 32<<20)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		_ = out.Flush()
	}
	for sc.Scan() {
		fields := splitCommand(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		switch cmd {
		case "QUIT":
			reply("OK bye")
			return
		case "STATUS":
			s.mu.Lock()
			live := 0
			for _, n := range s.nodes {
				if n.state == nodeLive {
					live++
				}
			}
			eps := 0
			for _, holders := range s.endpoints {
				eps += len(holders)
			}
			reply("sim seed=%d nodes=%d live=%d services=%d endpoints=%d artifacts=%d shards=%d storm=%.1f/s remote=%s",
				s.cfg.Seed, len(s.nodes), live, len(s.serviceNames), eps,
				len(s.arts), s.router.Shards(), s.stormRate, s.remoteAddr)
			s.mu.Unlock()
			reply("OK")
		case "NODES":
			limit := -1
			if len(fields) == 2 {
				v, err := strconv.Atoi(fields[1])
				if err != nil || v <= 0 {
					reply("ERR count must be a positive integer")
					continue
				}
				limit = v
			} else if len(fields) > 2 {
				reply("ERR usage: NODES [count]")
				continue
			}
			s.mu.Lock()
			rows := make([]string, 0, len(s.nodes))
			for _, n := range s.nodes {
				if limit >= 0 && len(rows) >= limit {
					break
				}
				rows = append(rows, fmt.Sprintf("%s addr=%s state=%s services=%d artifacts=%d listener=%v",
					n.name, n.addr, n.state, len(n.services), len(n.digests), n.listener))
			}
			total := len(s.nodes)
			s.mu.Unlock()
			for _, row := range rows {
				reply("%s", row)
			}
			reply("OK %d of %d node(s)", len(rows), total)
		case "EXPORTS":
			names := s.exportNames()
			for _, name := range names {
				reply("%s", name)
			}
			reply("OK %d export(s)", len(names))
		case "CALL":
			if len(fields) < 3 {
				reply("ERR usage: CALL <service> <method> [args...]")
				continue
			}
			args := make([]any, 0, len(fields)-3)
			for _, tok := range fields[3:] {
				args = append(args, parseCallArg(tok))
			}
			results, err := s.invoker.Call(fields[1], fields[2], args...)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			for _, res := range results {
				text := fmt.Sprintf("%v", res)
				if strings.ContainsAny(text, "\n\r") {
					text = strconv.Quote(text)
				}
				reply("= %s", text)
			}
			reply("OK %d result(s)", len(results))
		case "SUBSCRIBE":
			if len(fields) < 2 || len(fields) > 5 {
				reply("ERR usage: SUBSCRIBE <count> [filter] [addr] [window]")
				continue
			}
			count, err := strconv.Atoi(fields[1])
			if err != nil || count <= 0 {
				reply("ERR count must be a positive integer")
				continue
			}
			filter := ""
			if len(fields) >= 3 {
				filter = strings.Trim(fields[2], `"`)
			}
			addr := s.remoteAddr
			if len(fields) >= 4 {
				addr = fields[3]
			}
			window := int64(0)
			if len(fields) == 5 {
				w, werr := strconv.ParseInt(fields[4], 10, 64)
				if werr != nil || w < 0 {
					reply("ERR window must be a non-negative integer")
					continue
				}
				if w == 0 {
					window = -1
				} else {
					window = w
				}
			}
			n, err := s.streamEvents("", "EVENT", addr, filter, count, window, reply)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK %d event(s)", n)
		case "REPO":
			sub := "LIST"
			if len(fields) > 1 {
				sub = strings.ToUpper(fields[1])
			}
			if sub != "LIST" {
				reply("ERR usage: REPO [LIST]")
				continue
			}
			arts := s.store.List()
			for _, art := range arts {
				holders := s.ArtifactHolders(art.Digest)
				reply("%s %.12s %dB chunks=%d signer=%s holders=%s",
					art.Location, art.Digest, art.Size, art.Chunks, art.Signer,
					strings.Join(holders, ","))
			}
			reply("OK %d artifact(s)", len(arts))
		case "METRICS":
			if len(fields) > 2 {
				reply("ERR usage: METRICS [provider]")
				continue
			}
			var lines []any
			if len(fields) == 2 {
				lines = s.metricsRd.Read(fields[1])
			} else {
				lines = s.metricsRd.Snapshot()
			}
			n := 0
			for _, l := range lines {
				if text, ok := l.(string); ok {
					reply("local %s", text)
					n++
				}
			}
			reply("OK %d line(s)", n)
		case "TRACE":
			if len(fields) > 2 {
				reply("ERR usage: TRACE [id]")
				continue
			}
			if len(fields) == 1 {
				lines := s.metricsRd.Recent(16)
				for _, l := range lines {
					reply("%v", l)
				}
				reply("OK %d trace(s)", len(lines))
				continue
			}
			tid, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
			if err != nil || tid == 0 {
				reply("ERR trace id must be hex (run TRACE with no argument for recent ids)")
				continue
			}
			spans := s.plane.Tracer.Trace(tid)
			for _, sp := range spans {
				reply("= %s", sp.String())
			}
			reply("OK %d span(s)", len(spans))
		case "HEALTH":
			if len(fields) > 2 {
				reply("ERR usage: HEALTH [node]")
				continue
			}
			nodeFilter := ""
			if len(fields) == 2 {
				nodeFilter = fields[1]
			}
			s.mu.Lock()
			keys := make([]string, 0, len(s.healthView))
			for key, ev := range s.healthView {
				if nodeFilter == "" || ev.Node == nodeFilter {
					keys = append(keys, key)
				}
			}
			sort.Strings(keys)
			rows := make([]string, len(keys))
			for i, key := range keys {
				ev := s.healthView[key]
				rows[i] = fmt.Sprintf("%s node=%s status=%s cause=%s",
					ev.Service, ev.Node, ev.Addr, ev.Instance)
			}
			s.mu.Unlock()
			for _, row := range rows {
				reply("%s", row)
			}
			reply("OK %d record(s)", len(rows))
		case "ALERTS":
			if len(fields) >= 2 && strings.ToUpper(fields[1]) == "FOLLOW" {
				count := 16
				if len(fields) == 3 {
					v, err := strconv.Atoi(fields[2])
					if err != nil || v <= 0 {
						reply("ERR count must be a positive integer")
						continue
					}
					count = v
				}
				n, err := s.streamEvents(remote.HealthServiceName, "ALERT", s.remoteAddr, "", count, 0, reply)
				if err != nil {
					reply("ERR %v", err)
					continue
				}
				reply("OK %d alert(s)", n)
				continue
			}
			if len(fields) != 1 {
				reply("ERR usage: ALERTS [FOLLOW [count]]")
				continue
			}
			s.mu.Lock()
			recent := append([]string(nil), s.alerts...)
			s.mu.Unlock()
			for _, row := range recent {
				reply("%s", row)
			}
			reply("OK %d alert(s)", len(recent))
		case "FAULT":
			s.serveFault(fields, reply)
		case "LIST", "CREATE", "START", "STOP", "DESTROY", "BUNDLES", "DEPLOY", "LOG":
			reply("ERR %s needs a real framework; dosgi-sim serves directory state only (supported: %s)",
				cmd, simSupportedVerbs)
		default:
			reply("ERR unknown command %s (supported: %s)", cmd, simSupportedVerbs)
		}
	}
}

// serveFault dispatches the FAULT directive family (PROTOCOL.md annex A).
func (s *Sim) serveFault(fields []string, reply func(string, ...any)) {
	const usage = "usage: FAULT KILL|REVIVE|PARTITION|HEAL <node> | FAULT DROP <n> | FAULT ROLL | FAULT STORM <rate> | FAULT HEALTH <node> <component> <status> [cause]"
	if len(fields) < 2 {
		reply("ERR %s", usage)
		return
	}
	switch strings.ToUpper(fields[1]) {
	case "KILL", "REVIVE", "PARTITION", "HEAL":
		if len(fields) != 3 {
			reply("ERR usage: FAULT %s <node>", strings.ToUpper(fields[1]))
			return
		}
		var err error
		switch strings.ToUpper(fields[1]) {
		case "KILL":
			err = s.KillNode(fields[2])
		case "REVIVE":
			err = s.ReviveNode(fields[2])
		case "PARTITION":
			err = s.PartitionNode(fields[2])
		default:
			err = s.HealNode(fields[2])
		}
		if err != nil {
			reply("ERR %v", err)
			return
		}
		reply("OK %s %s", strings.ToLower(fields[1]), fields[2])
	case "DROP":
		if len(fields) != 3 {
			reply("ERR usage: FAULT DROP <n>")
			return
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			reply("ERR drop count must be a positive integer")
			return
		}
		s.DropPushes(n)
		reply("OK next %d push(es) will drop", n)
	case "ROLL":
		if len(fields) != 2 {
			reply("ERR usage: FAULT ROLL")
			return
		}
		n := s.RollWindows()
		reply("OK rolled replay windows past %d suppressed event(s)", n)
	case "STORM":
		if len(fields) != 3 {
			reply("ERR usage: FAULT STORM <eventsPerSecond>")
			return
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || rate < 0 {
			reply("ERR rate must be a non-negative number")
			return
		}
		s.SetStormRate(rate)
		reply("OK storm at %.1f event(s)/s", rate)
	case "HEALTH":
		if len(fields) < 5 {
			reply("ERR usage: FAULT HEALTH <node> <component> <status> [cause]")
			return
		}
		cause := strings.Trim(strings.Join(fields[5:], " "), `"`)
		status := fields[4]
		if strings.EqualFold(status, "CLEAR") {
			status = ""
		}
		s.SetHealth(fields[2], fields[3], status, cause)
		reply("OK health %s@%s", fields[3], fields[2])
	default:
		reply("ERR %s", usage)
	}
}

// exportNames lists every service the primary listener serves, sorted:
// the simulator's own exports plus the live synthetic population.
func (s *Sim) exportNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.serviceNames)+3)
	for _, svc := range s.serviceNames {
		if len(s.endpoints[svc]) > 0 {
			names = append(names, svc)
		}
	}
	names = append(names, "echo", services.MetricsRemoteName, provision.ServiceName)
	sort.Strings(names)
	return names
}

// streamEvents subscribes to addr's event stream — service "" for
// dosgi.events, remote.HealthServiceName for the alert stream — and
// emits up to count events as "<label> ..." lines, exactly as dosgid's
// admin plane does.
func (s *Sim) streamEvents(service, label, addr, filter string, count int, window int64, reply func(string, ...any)) (int, error) {
	events := make(chan remote.ServiceEvent, 64)
	sub, err := remote.NewSubscriber(remote.SubscriberConfig{
		Transport: s.transport,
		Sched:     s.sched,
		Service:   service,
		Addrs:     []string{addr},
		Filter:    filter,
		Window:    window,
		OnEvent: func(ev remote.ServiceEvent) {
			select {
			case events <- ev:
			default: // an overwhelmed admin client drops, not deadlocks
			}
		},
	})
	if err != nil {
		return 0, err
	}
	defer sub.Close()
	deadline := time.NewTimer(subscribeTimeout)
	defer deadline.Stop()
	received := 0
	for received < count {
		select {
		case ev := <-events:
			reply("%s %s %s node=%s addr=%s instance=%s seq=%d",
				label, ev.Type, ev.Service, ev.Node, ev.Addr, ev.Instance, ev.Seq)
			received++
		case <-deadline.C:
			return received, nil
		}
	}
	return received, nil
}

// parseCallArg maps a CLI token to a wire value: int64, float64, bool,
// then string. Double quotes force string and allow embedded spaces —
// the same mapping dosgid's admin plane applies.
func parseCallArg(tok string) any {
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(tok, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseBool(tok); err == nil {
		return v
	}
	return strings.Trim(tok, `"`)
}

// splitCommand tokenizes an admin line like strings.Fields but keeps
// double-quoted segments — quotes included, so parseCallArg still sees
// them — intact.
func splitCommand(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case !inQuote && (r == ' ' || r == '\t'):
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
