// Package protosim is the protocol-faithful cluster simulator behind
// cmd/dosgi-sim: one process that speaks the complete documented wire
// protocol (docs/PROTOCOL.md) — dosgi.remote invocations, the
// dosgi.events verbs with replay windows and credit backpressure,
// dosgi.provision chunk transfer over synthetic content-addressed blobs,
// dosgi.metrics and dosgi.health — while faking an N-hundred-node
// cluster: a deterministic, seeded population of endpoint, artifact and
// health records, a configurable event storm, and scripted fault
// directives (kill or partition a fake node, drop pushes, roll the
// replay windows) so client failover paths are reachable on demand.
//
// Fidelity comes from reuse, not reimplementation: the simulator serves
// through the SAME remote.TCPServer, remote.Dispatcher, two
// remote.EventBrokers (dosgi.events + dosgi.health) and a real
// provision.Store that a dosgid daemon uses — only the populations
// behind them are synthetic. The admin line protocol dosgictl speaks is
// served beside the binary listener, so every dosgictl verb that reads
// state (EXPORTS, CALL, SUBSCRIBE, REPO LIST, METRICS, HEALTH, ALERTS)
// works against a simulator unchanged.
//
// The same move vcsim made for vSphere: clients are developed and
// soak-tested against production-scale cluster state on a laptop, and
// the conformance suite (internal/conformance) runs against BOTH this
// simulator and a real dosgid to prove the two backends implement one
// spec.
package protosim

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/migrate"
	"dosgi/internal/obs"
	"dosgi/internal/provision"
	"dosgi/internal/remote"
	"dosgi/internal/services"
)

// Config sizes and seeds the synthetic cluster. The zero value of every
// field selects a sensible default; the zero Config is a 200-node
// cluster.
type Config struct {
	// Seed drives every synthetic population: two simulators built from
	// the same Config are bit-for-bit identical (service names, artifact
	// digests, health records).
	Seed int64
	// Nodes is the fake cluster size (default 200).
	Nodes int
	// ServicesPerNode scales the endpoint population (default 4): the
	// simulator fabricates Nodes*ServicesPerNode/Replication distinct
	// services, each replicated on Replication consecutive nodes.
	ServicesPerNode int
	// Replication is the replica count per synthetic service (default 3).
	Replication int
	// Artifacts is the synthetic artifact count (default 12; negative
	// disables the provisioning population).
	Artifacts int
	// ArtifactChunk is the chunk size of synthetic artifacts (default
	// 4096 — small, so fetch tests exercise multi-chunk transfers).
	ArtifactChunk int64
	// ArtifactHolders is how many fake nodes hold each artifact
	// (default 3): artifact k lives on nodes k..k+H-1 (mod Nodes).
	ArtifactHolders int
	// NodeListeners gives the first N fake nodes a real TCP listener of
	// their own (default 0): those nodes answer dosgi.provision from
	// their own holdings only — a replica a fetcher can actually dial,
	// fail over from, and lose mid-transfer to a KILL directive.
	NodeListeners int
	// Shards is the directory shard count the simulated cluster's
	// records are laid out over (default 1 — the single-group layout):
	// every synthetic service, artifact and health record routes to a
	// shard via the same rendezvous hashing the real sharded directory
	// uses, both brokers partition their replay rings per shard, and
	// STATUS / sim:cluster metrics report the topology and per-shard
	// populations.
	Shards int
	// StormRate starts the event storm at this many events/second
	// (default off; adjustable live via SetStormRate or FAULT STORM).
	StormRate float64
	// ReplayWindow is the brokers' per-subscription replay ring depth
	// (default remote.DefaultReplayWindow).
	ReplayWindow int
	// Lease overrides the brokers' subscription lease (default
	// remote.DefaultEventLease).
	Lease time.Duration
	// AdminAddr/RemoteAddr are the listen addresses (default ephemeral
	// loopback ports).
	AdminAddr  string
	RemoteAddr string
}

// fill applies defaults in place.
func (c *Config) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 200
	}
	if c.ServicesPerNode <= 0 {
		c.ServicesPerNode = 4
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Replication > c.Nodes {
		c.Replication = c.Nodes
	}
	if c.Artifacts == 0 {
		c.Artifacts = 12
	}
	if c.Artifacts < 0 {
		c.Artifacts = 0
	}
	if c.ArtifactChunk <= 0 {
		c.ArtifactChunk = 4096
	}
	if c.ArtifactHolders <= 0 {
		c.ArtifactHolders = 3
	}
	if c.ArtifactHolders > c.Nodes {
		c.ArtifactHolders = c.Nodes
	}
	if c.NodeListeners < 0 {
		c.NodeListeners = 0
	}
	if c.NodeListeners > c.Nodes {
		c.NodeListeners = c.Nodes
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.ReplayWindow <= 0 {
		c.ReplayWindow = remote.DefaultReplayWindow
	}
	if c.AdminAddr == "" {
		c.AdminAddr = "127.0.0.1:0"
	}
	if c.RemoteAddr == "" {
		c.RemoteAddr = "127.0.0.1:0"
	}
}

// nodeState is a fake node's lifecycle state.
type nodeState int

const (
	nodeLive nodeState = iota
	nodeDead
	nodePartitioned
)

func (st nodeState) String() string {
	switch st {
	case nodeDead:
		return "dead"
	case nodePartitioned:
		return "partitioned"
	default:
		return "live"
	}
}

// simNode is one fake cluster member. Nodes with a real listener carry
// their listener's address; the rest carry a synthetic TEST-NET address
// that deliberately does not answer — like most of a real 200-node
// cluster seen from one client, they exist only as directory records.
type simNode struct {
	name     string
	addr     string
	state    nodeState
	listener bool
	srv      *remote.TCPServer
	services []string // sorted synthetic service names exported here
	digests  []string // artifact digests held here
}

// Sim is one running simulator: a binary remote-protocol listener, an
// admin line-protocol listener, and the synthetic populations behind
// them. Safe for concurrent use; Close is idempotent.
type Sim struct {
	cfg   Config
	sched *clock.Real

	plane     *obs.Plane
	metrics   *services.MetricsService
	metricsRd *services.MetricsRemote

	broker       *remote.EventBroker
	healthBroker *remote.EventBroker
	router       migrate.ShardRouter
	faults       *faultInjector
	echo         simEcho
	store        *provision.Store

	remoteSrv  *remote.TCPServer
	remoteAddr string
	adminLn    net.Listener

	transport *remote.TCPTransport
	pool      *remote.Pool
	invoker   *remote.Invoker

	mu           sync.Mutex
	closed       bool
	nodes        []*simNode
	byName       map[string]*simNode
	serviceNames []string                       // sorted
	endpoints    map[string]map[string]struct{} // service → live holder node names
	arts         []provision.Artifact
	healthView   map[string]remote.ServiceEvent // "component@node" → record
	alerts       []string
	rng          *rand.Rand
	stormRate    float64
	stormCarry   float64
	stormTimer   clock.Timer
	chunkGate    func(node, digest string, index int64) bool
	adminConns   map[net.Conn]struct{}
}

// New builds the populations, starts every listener and returns the
// running simulator.
func New(cfg Config) (*Sim, error) {
	cfg.fill()
	s := &Sim{
		cfg:        cfg,
		sched:      clock.NewReal(),
		store:      provision.NewStore(),
		byName:     make(map[string]*simNode),
		endpoints:  make(map[string]map[string]struct{}),
		healthView: make(map[string]remote.ServiceEvent),
		adminConns: make(map[net.Conn]struct{}),
		router:     migrate.NewShardRouter(cfg.Shards),
		faults:     newFaultInjector(),
	}
	if err := s.buildPopulation(); err != nil {
		s.sched.Stop()
		return nil, err
	}

	s.plane = obs.NewPlane("sim", s.sched.Now)
	s.metrics = services.NewMetricsService()
	s.metricsRd = services.NewMetricsRemote(s.metrics, s.plane.Tracer.Store())

	brokerOpts := []remote.BrokerOption{
		remote.WithEventSnapshot(s.endpointSnapshot),
		remote.WithReplayWindow(cfg.ReplayWindow),
		remote.WithBrokerAckHistogram(s.plane.EventAckLag),
		remote.WithReplayRingShards(s.router.Shards(), s.router.Shard),
	}
	healthOpts := []remote.BrokerOption{
		remote.WithBrokerService(remote.HealthServiceName),
		remote.WithEventSnapshot(s.healthSnapshot),
		remote.WithReplayWindow(cfg.ReplayWindow),
		remote.WithReplayRingShards(s.router.Shards(), s.router.Shard),
	}
	if cfg.Lease > 0 {
		brokerOpts = append(brokerOpts, remote.WithEventLease(cfg.Lease))
		healthOpts = append(healthOpts, remote.WithEventLease(cfg.Lease))
	}
	s.broker = remote.NewEventBroker(s.sched, brokerOpts...)
	s.healthBroker = remote.NewEventBroker(s.sched, healthOpts...)

	remoteLn, err := net.Listen("tcp", cfg.RemoteAddr)
	if err != nil {
		s.sched.Stop()
		return nil, err
	}
	s.remoteAddr = remoteLn.Addr().String()
	s.remoteSrv = remote.ServeTCP(remoteLn, s.handlerFor(nil),
		remote.WithTCPServerClock(s.sched.Now))

	// Per-node listeners: the first NodeListeners fake nodes become
	// individually dialable replicas with their own provisioning view.
	for i := 0; i < cfg.NodeListeners; i++ {
		n := s.nodes[i]
		n.listener = true
		if err := s.listenNode(n, "127.0.0.1:0"); err != nil {
			s.Close()
			return nil, err
		}
	}

	s.registerProviders()

	s.transport = remote.NewTCPTransport(s.sched, remote.WithTCPFrameHistogram(s.plane.FrameRTT))
	s.pool = remote.NewPool(s.transport, remote.WithPoolObserver(s.sched.Now, s.plane.PoolWait))
	s.invoker = remote.NewInvoker(s.pool, &simResolver{s: s},
		remote.WithOrderedResolution(),
		remote.WithInvokerObservability(s.plane.Tracer, s.plane.InvokerCall))

	adminLn, err := net.Listen("tcp", cfg.AdminAddr)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.adminLn = adminLn
	go s.serveAdmin()

	if cfg.StormRate > 0 {
		s.SetStormRate(cfg.StormRate)
	}
	return s, nil
}

// handlerFor builds a node's full server handler chain: fault-injecting
// pusher wrapper over the event dispatcher over the invocation
// dispatcher. node nil means the cluster-wide primary listener.
func (s *Sim) handlerFor(node *simNode) remote.Handler {
	nodeName := ""
	if node != nil {
		nodeName = node.name
	}
	disp := remote.NewDispatcher(&simSource{s: s, node: nodeName},
		remote.WithDispatcherTracer(s.plane.Tracer))
	return &faultHandler{
		inner:  remote.NewEventDispatcher(disp, s.broker, s.healthBroker),
		faults: s.faults,
	}
}

// listenNode (re)opens a fake node's own listener on addr and records
// the bound address as the node's directory address.
func (s *Sim) listenNode(n *simNode, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("protosim: node %s listener: %w", n.name, err)
	}
	s.mu.Lock()
	n.addr = ln.Addr().String()
	n.srv = remote.ServeTCP(ln, s.handlerFor(n), remote.WithTCPServerClock(s.sched.Now))
	s.mu.Unlock()
	return nil
}

// registerProviders wires the simulator's metrics providers.
func (s *Sim) registerProviders() {
	s.metrics.RegisterProvider("obs:self", s.plane.Provider())
	s.metrics.RegisterProvider("sim:cluster", func() map[string]any {
		s.mu.Lock()
		defer s.mu.Unlock()
		live := 0
		for _, n := range s.nodes {
			if n.state == nodeLive {
				live++
			}
		}
		eps := 0
		for _, holders := range s.endpoints {
			eps += len(holders)
		}
		return map[string]any{
			"nodes": len(s.nodes), "live": live,
			"services": len(s.serviceNames), "endpoints": eps,
			"artifacts": len(s.arts), "shards": s.router.Shards(),
			"stormRate":     s.stormRate,
			"droppedPushes": s.faults.droppedCount(),
		}
	})
	s.metrics.RegisterProvider("sim:shards", func() map[string]any {
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make(map[string]any, s.router.Shards())
		for _, svc := range s.serviceNames {
			key := fmt.Sprintf("shard%02d-services", s.router.Shard(svc))
			n, _ := out[key].(int)
			out[key] = n + 1
		}
		return out
	})
	s.metrics.RegisterProvider("events:sim", brokerProvider(s.broker))
	s.metrics.RegisterProvider("health:sim", brokerProvider(s.healthBroker))
}

// brokerProvider adapts an EventBroker's stats to a metrics provider.
func brokerProvider(b *remote.EventBroker) func() map[string]any {
	return func() map[string]any {
		st := b.Stats()
		return map[string]any{
			"published": st.Published, "pushed": st.Pushed,
			"lagging": st.Lagging, "suspends": st.Suspends,
			"resumes": st.Resumes, "replayHits": st.ReplayHits,
			"replayMisses": st.ReplayMisses, "retransmits": st.Retransmits,
			"overflowed": st.Overflowed, "subscribers": b.SubscriberCount(),
		}
	}
}

// ShardOf returns the directory shard a record key routes to under the
// simulator's configured topology (always 0 with one shard).
func (s *Sim) ShardOf(key string) int { return s.router.Shard(key) }

// AdminAddr returns the admin line-protocol address (what dosgictl
// -addr takes).
func (s *Sim) AdminAddr() string { return s.adminLn.Addr().String() }

// RemoteAddr returns the binary remote-protocol address of the primary
// (cluster-wide) listener.
func (s *Sim) RemoteAddr() string { return s.remoteAddr }

// Sched exposes the simulator's scheduler (tests share it with client
// transports).
func (s *Sim) Sched() clock.Scheduler { return s.sched }

// NodeAddr returns a fake node's directory address — a real listener
// address for the first Config.NodeListeners nodes, a synthetic
// TEST-NET address for the rest.
func (s *Sim) NodeAddr(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.byName[name]
	if !ok {
		return "", false
	}
	return n.addr, true
}

// NodeNames lists every fake node name in order.
func (s *Sim) NodeNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.name
	}
	return out
}

// ServiceNames lists the synthetic service population, sorted.
func (s *Sim) ServiceNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.serviceNames...)
}

// Artifacts lists the synthetic artifact metadata in creation order.
func (s *Sim) Artifacts() []provision.Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]provision.Artifact(nil), s.arts...)
}

// ArtifactHolders names the fake nodes holding digest, sorted.
func (s *Sim) ArtifactHolders(digest string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, n := range s.nodes {
		if n.state == nodeDead {
			continue
		}
		for _, d := range n.digests {
			if d == digest {
				out = append(out, n.name)
				break
			}
		}
	}
	return out
}

// EndpointCount returns the size of the current event-resync snapshot:
// the simulator's own exports plus every live synthetic endpoint — the
// replica count a converged subscriber knows.
func (s *Sim) EndpointCount() int {
	return len(s.endpointSnapshot())
}

// BrokerStats returns the dosgi.events broker's delivery counters.
func (s *Sim) BrokerStats() remote.EventBrokerStats { return s.broker.Stats() }

// SetChunkGate installs a hook consulted before every dosgi.provision
// Chunk the simulator serves (any listener). Returning false makes that
// node answer an application error — the scripted mid-transfer fault
// that forces a fetcher failover at an exact chunk index. nil removes
// the gate.
func (s *Sim) SetChunkGate(fn func(node, digest string, index int64) bool) {
	s.mu.Lock()
	s.chunkGate = fn
	s.mu.Unlock()
}

// Close stops every listener, the storm and the scheduler.
func (s *Sim) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.stormTimer != nil {
		s.stormTimer.Cancel()
		s.stormTimer = nil
	}
	var srvs []*remote.TCPServer
	for _, n := range s.nodes {
		if n.srv != nil {
			srvs = append(srvs, n.srv)
			n.srv = nil
		}
	}
	adminLn := s.adminLn
	conns := make([]net.Conn, 0, len(s.adminConns))
	for c := range s.adminConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if adminLn != nil {
		_ = adminLn.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if s.pool != nil {
		s.pool.Close()
	}
	for _, srv := range srvs {
		srv.Close()
	}
	if s.remoteSrv != nil {
		s.remoteSrv.Close()
	}
	s.sched.Stop()
}

// endpointSnapshot feeds the events broker's resync: the simulator's
// own exports first, then every live synthetic endpoint, in
// deterministic order.
func (s *Sim) endpointSnapshot() []remote.ServiceEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := []remote.ServiceEvent{
		{Service: "echo", Node: "sim", Addr: s.remoteAddr},
		{Service: services.MetricsRemoteName, Node: "sim", Addr: s.remoteAddr},
		{Service: provision.ServiceName, Node: "sim", Addr: s.remoteAddr},
	}
	for _, svc := range s.serviceNames {
		holders := s.endpoints[svc]
		names := make([]string, 0, len(holders))
		for name := range holders {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			evs = append(evs, remote.ServiceEvent{
				Service: svc, Node: name, Addr: s.byName[name].addr,
			})
		}
	}
	return evs
}

// healthSnapshot feeds the health broker's resync, sorted like dosgid's.
func (s *Sim) healthSnapshot() []remote.ServiceEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := make([]remote.ServiceEvent, 0, len(s.healthView))
	for _, ev := range s.healthView {
		ev.Type = ""
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Node != evs[j].Node {
			return evs[i].Node < evs[j].Node
		}
		return evs[i].Service < evs[j].Service
	})
	return evs
}

// lookupServiceLocked reports whether name is currently served (the
// simulator's own exports or a synthetic service with a live replica).
func (s *Sim) lookupServiceLocked(name string) bool {
	switch name {
	case "echo", services.MetricsRemoteName, provision.ServiceName:
		return true
	}
	return len(s.endpoints[name]) > 0
}

// simSource resolves the services a listener serves. Synthetic
// endpoint services all dispatch to the echo implementation — the
// simulator fakes their existence, not their business logic — while
// the reserved planes are the real implementations over synthetic
// state. node selects a per-node provisioning view ("" = union).
type simSource struct {
	s    *Sim
	node string
}

// Lookup implements remote.ServiceSource.
func (src *simSource) Lookup(name string) (any, bool) {
	switch name {
	case "echo":
		return src.s.echo, true
	case services.MetricsRemoteName:
		return src.s.metricsRd, true
	case provision.ServiceName:
		return &repoView{s: src.s, node: src.node}, true
	}
	src.s.mu.Lock()
	defer src.s.mu.Unlock()
	if len(src.s.endpoints[name]) > 0 {
		return src.s.echo, true
	}
	return nil, false
}

// simResolver resolves admin CALLs: every service the simulator serves
// resolves to the primary listener.
type simResolver struct{ s *Sim }

// Endpoints implements remote.EndpointResolver.
func (r *simResolver) Endpoints(service string) []remote.Endpoint {
	r.s.mu.Lock()
	ok := r.s.lookupServiceLocked(service)
	r.s.mu.Unlock()
	if !ok {
		return nil
	}
	return []remote.Endpoint{{Node: "sim", Addr: r.s.remoteAddr}}
}
