package protosim

import (
	"sync/atomic"
	"testing"
	"time"

	"dosgi/internal/remote"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubscriberSoakUnderEventStorm runs a real remote.Subscriber against
// a 1000-endpoint simulator pushing a 500 ev/s storm, injects push drops
// and a forced replay-window roll, and asserts every gap healed — through
// in-place Replay while the window still covered it, through a full
// resync once it had rolled — leaving the subscriber's directory view
// converged with the simulator's.
func TestSubscriberSoakUnderEventStorm(t *testing.T) {
	sim, err := New(Config{
		Seed:            3,
		Nodes:           125,
		ServicesPerNode: 8,
		Replication:     1, // 125 × 8 / 1 = 1000 synthetic endpoints
		Artifacts:       -1,
		ReplayWindow:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if got := len(sim.ServiceNames()); got != 1000 {
		t.Fatalf("population built %d services, want 1000", got)
	}

	tr := remote.NewTCPTransport(sim.Sched())
	var delivered atomic.Uint64
	sub, err := remote.NewSubscriber(remote.SubscriberConfig{
		Transport:  tr,
		Sched:      sim.Sched(),
		Addrs:      []string{sim.RemoteAddr()},
		OnEvent:    func(remote.ServiceEvent) { delivered.Add(1) },
		RenewEvery: 150 * time.Millisecond,
		Window:     512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Converge the initial resync: the subscriber must absorb the full
	// 1000-endpoint snapshot (plus the sim's own exports) through the
	// credit window before the storm starts.
	want := sim.EndpointCount()
	waitUntil(t, "initial resync", 15*time.Second, func() bool { return sub.Known() == want })
	if st := sub.Stats(); st.Resyncs != 1 || st.Gaps != 0 {
		t.Fatalf("after initial resync: %+v, want exactly one resync and no gaps", st)
	}

	// Storm: ~500 MODIFIED re-announcements per second across the live
	// population. The directory content never changes — only the delivery
	// machinery is under load.
	sim.SetStormRate(500)
	before := delivered.Load()
	waitUntil(t, "storm delivery", 10*time.Second, func() bool { return delivered.Load() > before+100 })

	// Fault 1: silently drop 25 pushes the broker believes delivered. The
	// subscriber must notice the sequence gap on the next push and heal it
	// in place via Replay — the window (64) still covers a 25-event hole.
	sim.DropPushes(25)
	waitUntil(t, "replay heal after dropped pushes", 15*time.Second, func() bool {
		st := sub.Stats()
		return st.Gaps >= 1 && st.Replayed >= 1
	})
	if got := sim.DroppedPushes(); got < 25 {
		t.Fatalf("fault injector dropped %d pushes, want 25", got)
	}

	// Fault 2: roll the replay window — a burst of window+2 events all
	// silently dropped. The next storm push exposes a gap the window no
	// longer covers; Replay must be refused and the subscriber must fall
	// back to a full resubscribe-and-resync.
	resyncsBefore := sub.Stats().Resyncs
	if n := sim.RollWindows(); n < 66 {
		t.Fatalf("RollWindows suppressed %d events, want >= window+2", n)
	}
	waitUntil(t, "resync heal after window roll", 20*time.Second, func() bool {
		return sub.Stats().Resyncs > resyncsBefore
	})

	// Quiesce and check convergence: the storm only re-announced live
	// replicas, so the healed view must equal the simulator's directory.
	sim.SetStormRate(0)
	waitUntil(t, "post-storm convergence", 15*time.Second, func() bool {
		return sub.Known() == sim.EndpointCount()
	})

	st := sub.Stats()
	if st.Gaps < 1 || st.Replays < 1 || st.Replayed < 1 {
		t.Fatalf("soak never exercised the replay path: %+v", st)
	}
	if st.Resyncs < 2 {
		t.Fatalf("soak never exercised the resync path: %+v", st)
	}
	bs := sim.BrokerStats()
	if bs.ReplayHits < 1 || bs.ReplayMisses < 1 {
		t.Fatalf("broker counters disagree with the healed faults: %+v", bs)
	}
}
