package protosim

import (
	"testing"

	"dosgi/internal/conformance"
)

// TestConformanceSim runs the backend-agnostic PROTOCOL.md suite against
// the simulator's primary listener — the same suite cmd/dosgid runs
// against the real daemon. Passing both is the simulator's fidelity
// contract: a client cannot tell the fake cluster from a real one at the
// wire level.
func TestConformanceSim(t *testing.T) {
	sim, err := New(Config{
		Seed:          7,
		Nodes:         16,
		Artifacts:     2,
		ArtifactChunk: 64, // several chunks per artifact for the §6.1 walk
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Close)

	arts := sim.Artifacts()
	conformance.Run(t, conformance.Target{
		Name:     "dosgi-sim",
		Addr:     sim.RemoteAddr(),
		Sched:    sim.Sched(),
		Echo:     "echo",
		Artifact: &arts[0],
		InjectHealth: func(component, node, status, cause string) {
			sim.SetHealth(node, component, status, cause)
		},
		HealthNode: "node-000",
	})
}
