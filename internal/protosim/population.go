package protosim

import (
	"fmt"
	"math/rand"
	"sort"

	"dosgi/internal/provision"
	"dosgi/internal/remote"
)

// healthComponents are the per-node components the synthetic health
// population covers (mirroring the planes a dosgid reports on).
var healthComponents = []string{"remote", "events", "resources"}

// buildPopulation fabricates the whole synthetic cluster from the seed:
// nodes, replicated service endpoints, content-addressed artifacts and
// per-node health records. Everything is a pure function of Config, so
// two simulators built from the same Config expose identical
// directories, digests and health views.
func (s *Sim) buildPopulation() error {
	cfg := s.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.rng = rng

	// Nodes. Addresses default to TEST-NET-3 — deliberately unroutable,
	// because most fake nodes exist only as directory records; the first
	// NodeListeners nodes get a real loopback address once their
	// listener binds (New overwrites addr in listenNode).
	s.nodes = make([]*simNode, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := &simNode{
			name:  fmt.Sprintf("node-%03d", i),
			addr:  fmt.Sprintf("203.0.113.%d:%d", 1+i%250, 7101+i),
			state: nodeLive,
		}
		s.nodes[i] = n
		s.byName[n.name] = n
	}

	// Services: Nodes*ServicesPerNode endpoint records spread over
	// distinct names, each replicated on Replication consecutive nodes.
	total := cfg.Nodes * cfg.ServicesPerNode / cfg.Replication
	if total < 1 {
		total = 1
	}
	s.serviceNames = make([]string, total)
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("app.svc-%04d", i)
		s.serviceNames[i] = name
		holders := make(map[string]struct{}, cfg.Replication)
		for j := 0; j < cfg.Replication; j++ {
			n := s.nodes[(i+j)%cfg.Nodes]
			holders[n.name] = struct{}{}
			n.services = append(n.services, name)
		}
		s.endpoints[name] = holders
	}

	// Artifacts: real signed, chunked, content-addressed blobs built
	// through provision.NewArtifact over seeded payloads, held by
	// ArtifactHolders consecutive nodes starting at the artifact index —
	// so artifact 0's replicas coincide with the nodes that get real
	// listeners, and a fetch test can dial them.
	key := provision.SampleKeyring()[provision.SampleSigner]
	for k := 0; k < cfg.Artifacts; k++ {
		blob := make([]byte, 2048+rng.Intn(30*1024))
		rng.Read(blob)
		img := &provision.BundleImage{
			ManifestText: fmt.Sprintf(
				"Bundle-SymbolicName: sim.artifact-%03d\nBundle-Version: 1.%d.0\n", k, k),
			DataFiles: map[string][]byte{"blob.bin": blob},
		}
		location := fmt.Sprintf("sim:artifact-%03d", k)
		art, payload, err := provision.NewArtifact(location, img,
			provision.SampleSigner, key, cfg.ArtifactChunk)
		if err != nil {
			return fmt.Errorf("protosim: artifact %d: %w", k, err)
		}
		if err := s.store.Add(art, payload); err != nil {
			return fmt.Errorf("protosim: artifact %d: %w", k, err)
		}
		s.arts = append(s.arts, art)
		for j := 0; j < cfg.ArtifactHolders; j++ {
			n := s.nodes[(k+j)%cfg.Nodes]
			n.digests = append(n.digests, art.Digest)
		}
	}

	// Health: every node reports OK on each component, with a seeded
	// sprinkling of degradations so HEALTH output isn't all green.
	for _, n := range s.nodes {
		for _, comp := range healthComponents {
			ev := remote.ServiceEvent{Service: comp, Node: n.name, Addr: "OK"}
			if rng.Intn(40) == 0 {
				ev.Addr = "DEGRADED"
				ev.Instance = "sim: synthetic load"
			}
			s.healthView[comp+"@"+n.name] = ev
		}
	}
	return nil
}

// SetHealth folds one health observation into the simulator's view with
// the daemon's exactly-once semantics: an unchanged (status, cause) pair
// is suppressed, a change publishes exactly one alert (REGISTERED for a
// new component@node subject, MODIFIED for a transition), and empty
// status withdraws the record with an UNREGISTERING alert.
func (s *Sim) SetHealth(node, component, status, cause string) {
	key := component + "@" + node
	ev := remote.ServiceEvent{Service: component, Node: node, Addr: status, Instance: cause}

	s.mu.Lock()
	prev, known := s.healthView[key]
	if status == "" {
		if !known {
			s.mu.Unlock()
			return
		}
		delete(s.healthView, key)
		ev = prev
		ev.Type = remote.ServiceUnregistering
	} else if known && prev.Addr == status && prev.Instance == cause {
		s.mu.Unlock()
		return
	} else {
		ev.Type = remote.ServiceModified
		if !known {
			ev.Type = remote.ServiceRegistered
		}
		s.healthView[key] = remote.ServiceEvent{
			Service: component, Node: node, Addr: status, Instance: cause,
		}
	}
	s.noteAlertLocked(ev)
	s.mu.Unlock()

	s.healthBroker.Publish(ev)
}

// noteAlertLocked appends one line to the bounded alert log. Callers
// hold s.mu.
func (s *Sim) noteAlertLocked(ev remote.ServiceEvent) {
	line := fmt.Sprintf("%s %s@%s %s", ev.Type, ev.Service, ev.Node, ev.Addr)
	if ev.Instance != "" {
		line += " cause=" + ev.Instance
	}
	const maxAlerts = 256
	s.alerts = append(s.alerts, line)
	if len(s.alerts) > maxAlerts {
		s.alerts = s.alerts[len(s.alerts)-maxAlerts:]
	}
}

// randomLiveEndpointLocked picks a seeded-random live (service, node)
// replica for storm traffic. Callers hold s.mu.
func (s *Sim) randomLiveEndpointLocked() (remote.ServiceEvent, bool) {
	if len(s.serviceNames) == 0 {
		return remote.ServiceEvent{}, false
	}
	start := s.rng.Intn(len(s.serviceNames))
	for i := 0; i < len(s.serviceNames); i++ {
		svc := s.serviceNames[(start+i)%len(s.serviceNames)]
		holders := s.endpoints[svc]
		if len(holders) == 0 {
			continue
		}
		pick := s.rng.Intn(len(holders))
		names := make([]string, 0, len(holders))
		for name := range holders {
			names = append(names, name)
		}
		// Map order is randomized anyway; sort for a seed-stable pick.
		sort.Strings(names)
		name := names[pick]
		return remote.ServiceEvent{
			Service: svc, Node: name, Addr: s.byName[name].addr,
		}, true
	}
	return remote.ServiceEvent{}, false
}
