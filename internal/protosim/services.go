package protosim

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"dosgi/internal/manifest"
)

// simEcho is the invocation target behind "echo" and every synthetic
// service — the simulator fakes a service's existence, not its business
// logic, so one reflective implementation answers them all. The method
// set mirrors dosgid's echo service (Upper/Reverse/Add/Sleep) plus the
// probe methods the conformance suite drives: Echo (variadic value
// round-trip), Boom (handler panic containment), Weird (unencodable
// result degradation) and Blob (response size-limit degradation).
type simEcho struct{}

// Upper returns s upper-cased.
func (simEcho) Upper(s string) string { return strings.ToUpper(s) }

// Reverse returns s reversed rune-by-rune.
func (simEcho) Reverse(s string) string {
	r := []rune(s)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}

// Add sums two integers.
func (simEcho) Add(a, b int64) int64 { return a + b }

// Sleep blocks for ms milliseconds then reports it — the pipelining
// probe: a Sleep issued before a fast call completes after it on one
// connection.
func (simEcho) Sleep(ms int64) string {
	time.Sleep(time.Duration(ms) * time.Millisecond)
	return fmt.Sprintf("slept %dms", ms)
}

// Echo returns its arguments unchanged — the codec round-trip probe for
// every wire value shape (§5).
func (simEcho) Echo(vs ...any) []any { return vs }

// Boom panics — the §7 containment probe: the dispatcher must convert
// the panic into an application error on this call's correlation id,
// not kill the connection.
func (simEcho) Boom() string { panic("echo: boom") }

// Weird returns a value the wire codec cannot encode — the §7
// degradation probe: the reply must be an application error, not a
// dropped response.
func (simEcho) Weird() map[string]string { return map[string]string{"un": "encodable"} }

// Blob returns n bytes — with n past the frame limit, the §7 response
// size probe: an executed call whose result cannot travel must degrade
// to an application error on the same correlation id.
func (simEcho) Blob(n int64) ([]byte, error) {
	const maxBlob = 24 << 20
	if n < 0 || n > maxBlob {
		return nil, fmt.Errorf("blob size %d out of range [0, %d]", n, maxBlob)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b, nil
}

// repoView serves dosgi.provision over the simulator's synthetic
// artifact store. node "" is the primary listener's cluster-wide union;
// a named node answers only for its own holdings — so a fetcher talking
// to per-node listeners sees genuinely partial replicas it must fail
// over between.
type repoView struct {
	s    *Sim
	node string
}

// holds reports whether this view serves digest.
func (r *repoView) holds(digest string) bool {
	if r.node == "" {
		return r.s.store.Has(digest)
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	n, ok := r.s.byName[r.node]
	if !ok || n.state == nodeDead {
		return false
	}
	for _, d := range n.digests {
		if d == digest {
			return true
		}
	}
	return false
}

// Describe returns the JSON artifact record at location.
func (r *repoView) Describe(location string) ([]byte, error) {
	art, ok := r.s.store.ArtifactAt(location)
	if !ok || !r.holds(art.Digest) {
		return nil, fmt.Errorf("unknown artifact at %q", location)
	}
	return json.Marshal(art)
}

// DescribeDigest returns the JSON artifact record for digest.
func (r *repoView) DescribeDigest(digest string) ([]byte, error) {
	art, ok := r.s.store.Describe(digest)
	if !ok || !r.holds(digest) {
		return nil, fmt.Errorf("unknown artifact %q", digest)
	}
	return json.Marshal(art)
}

// Find resolves a bundle symbolic name and version range to an artifact
// record, as the real repository service does.
func (r *repoView) Find(symbolicName, versionRange string) ([]byte, error) {
	rng, err := manifest.ParseVersionRange(versionRange)
	if err != nil {
		return nil, err
	}
	art, ok := r.s.store.FindBundle(symbolicName, rng)
	if !ok || !r.holds(art.Digest) {
		return nil, fmt.Errorf("no artifact provides %s %s", symbolicName, versionRange)
	}
	return json.Marshal(art)
}

// Chunk returns one payload chunk. The chunk gate (SetChunkGate) is
// consulted first: a denial makes this replica answer an application
// error mid-transfer — the scripted fault a fetcher fails over from.
func (r *repoView) Chunk(digest string, index int64) ([]byte, error) {
	node := r.node
	if node == "" {
		node = "sim"
	}
	r.s.mu.Lock()
	gate := r.s.chunkGate
	r.s.mu.Unlock()
	if gate != nil && !gate(node, digest, index) {
		return nil, fmt.Errorf("chunk %d of %s: replica %s failed", index, digest, node)
	}
	if !r.holds(digest) {
		return nil, fmt.Errorf("no artifact with digest %q", digest)
	}
	chunk, ok := r.s.store.Chunk(digest, index)
	if !ok {
		return nil, fmt.Errorf("chunk %d of %s out of range", index, digest)
	}
	return chunk, nil
}

// Locations lists the artifact locations this view serves, sorted.
func (r *repoView) Locations() []string {
	out := []string{}
	for _, art := range r.s.store.List() {
		if r.holds(art.Digest) {
			out = append(out, art.Location)
		}
	}
	return out
}
