// Package sla models the Service Level Agreements the platform enforces:
// "the customer buys a given service from the provider based on a Service
// Level Agreement that states the available resources and guarantees" (§1).
// Agreements carry resource entitlements and priority; the Tracker records
// violations and per-instance availability, the two quantities the SLA
// experiments (E6, E8) report.
package sla

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Agreement is one customer's contract.
type Agreement struct {
	Customer string
	// CPUMillicores is the entitled CPU (1000 = one core).
	CPUMillicores int64
	// MemoryBytes is the entitled memory.
	MemoryBytes int64
	// DiskBytes is the entitled disk.
	DiskBytes int64
	// Priority orders customers when resources run short (higher wins).
	Priority int
	// AvailabilityTarget is the contracted availability (e.g. 0.999).
	AvailabilityTarget float64
}

// Violation records one observed breach.
type Violation struct {
	Instance string
	Customer string
	Resource string // "cpu", "memory", "disk", "availability"
	Limit    float64
	Observed float64
	At       time.Duration
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("violation{%s %s %s observed=%.1f limit=%.1f at=%v}",
		v.Instance, v.Customer, v.Resource, v.Observed, v.Limit, v.At)
}

// Tracker accumulates violations and availability intervals.
type Tracker struct {
	mu         sync.Mutex
	violations map[string][]Violation
	// downSince marks instances currently down; uptime bookkeeping.
	downSince map[string]time.Duration
	downTotal map[string]time.Duration
	birth     map[string]time.Duration
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		violations: make(map[string][]Violation),
		downSince:  make(map[string]time.Duration),
		downTotal:  make(map[string]time.Duration),
		birth:      make(map[string]time.Duration),
	}
}

// Record stores a violation.
func (t *Tracker) Record(v Violation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.violations[v.Instance] = append(t.violations[v.Instance], v)
}

// Violations returns the recorded breaches for an instance.
func (t *Tracker) Violations(instance string) []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Violation, len(t.violations[instance]))
	copy(out, t.violations[instance])
	return out
}

// TotalViolations counts breaches across all instances.
func (t *Tracker) TotalViolations() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, vs := range t.violations {
		n += len(vs)
	}
	return n
}

// Instances lists instances with any record, sorted.
func (t *Tracker) Instances() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := make(map[string]bool)
	for id := range t.violations {
		set[id] = true
	}
	for id := range t.birth {
		set[id] = true
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// MarkBorn starts availability accounting for an instance at time now.
func (t *Tracker) MarkBorn(instance string, now time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.birth[instance]; !ok {
		t.birth[instance] = now
	}
}

// MarkDown begins a downtime interval.
func (t *Tracker) MarkDown(instance string, now time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, down := t.downSince[instance]; !down {
		t.downSince[instance] = now
	}
}

// MarkUp ends a downtime interval.
func (t *Tracker) MarkUp(instance string, now time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if since, down := t.downSince[instance]; down {
		t.downTotal[instance] += now - since
		delete(t.downSince, instance)
	}
}

// Downtime returns the cumulative downtime of an instance as of now.
func (t *Tracker) Downtime(instance string, now time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.downTotal[instance]
	if since, down := t.downSince[instance]; down {
		total += now - since
	}
	return total
}

// Availability returns the fraction of time the instance was up since
// birth.
func (t *Tracker) Availability(instance string, now time.Duration) float64 {
	t.mu.Lock()
	birth, known := t.birth[instance]
	t.mu.Unlock()
	if !known || now <= birth {
		return 1.0
	}
	lifetime := now - birth
	down := t.Downtime(instance, now)
	if down >= lifetime {
		return 0
	}
	return 1.0 - float64(down)/float64(lifetime)
}

// CheckAvailability records a violation when the measured availability is
// below the agreement target; it reports whether a violation was recorded.
func (t *Tracker) CheckAvailability(instance string, agr Agreement, now time.Duration) bool {
	avail := t.Availability(instance, now)
	if avail >= agr.AvailabilityTarget {
		return false
	}
	t.Record(Violation{
		Instance: instance,
		Customer: agr.Customer,
		Resource: "availability",
		Limit:    agr.AvailabilityTarget,
		Observed: avail,
		At:       now,
	})
	return true
}
