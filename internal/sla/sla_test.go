package sla

import (
	"testing"
	"time"
)

func TestViolationRecording(t *testing.T) {
	tr := NewTracker()
	tr.Record(Violation{Instance: "i1", Customer: "acme", Resource: "cpu", Limit: 500, Observed: 900, At: time.Second})
	tr.Record(Violation{Instance: "i1", Customer: "acme", Resource: "memory", Limit: 100, Observed: 150, At: 2 * time.Second})
	tr.Record(Violation{Instance: "i2", Customer: "beta", Resource: "cpu", Limit: 200, Observed: 300, At: time.Second})

	if got := len(tr.Violations("i1")); got != 2 {
		t.Fatalf("i1 violations = %d", got)
	}
	if got := tr.TotalViolations(); got != 3 {
		t.Fatalf("total = %d", got)
	}
	if got := len(tr.Violations("unknown")); got != 0 {
		t.Fatalf("unknown violations = %d", got)
	}
}

func TestAvailabilityAccounting(t *testing.T) {
	tr := NewTracker()
	tr.MarkBorn("i1", 0)
	// Down from 2s to 3s out of a 10s life: 90% availability.
	tr.MarkDown("i1", 2*time.Second)
	tr.MarkUp("i1", 3*time.Second)
	if got := tr.Downtime("i1", 10*time.Second); got != time.Second {
		t.Fatalf("downtime = %v", got)
	}
	avail := tr.Availability("i1", 10*time.Second)
	if avail < 0.899 || avail > 0.901 {
		t.Fatalf("availability = %f", avail)
	}
}

func TestAvailabilityWhileDown(t *testing.T) {
	tr := NewTracker()
	tr.MarkBorn("i1", 0)
	tr.MarkDown("i1", 5*time.Second)
	// Still down at t=10s: 5s of downtime and counting.
	if got := tr.Downtime("i1", 10*time.Second); got != 5*time.Second {
		t.Fatalf("open-interval downtime = %v", got)
	}
	if avail := tr.Availability("i1", 10*time.Second); avail != 0.5 {
		t.Fatalf("availability = %f", avail)
	}
	// Double MarkDown is idempotent.
	tr.MarkDown("i1", 7*time.Second)
	if got := tr.Downtime("i1", 10*time.Second); got != 5*time.Second {
		t.Fatalf("downtime after double mark = %v", got)
	}
	// MarkUp closes the original interval.
	tr.MarkUp("i1", 10*time.Second)
	if got := tr.Downtime("i1", 20*time.Second); got != 5*time.Second {
		t.Fatalf("closed downtime = %v", got)
	}
}

func TestAvailabilityUnknownInstance(t *testing.T) {
	tr := NewTracker()
	if avail := tr.Availability("ghost", time.Hour); avail != 1.0 {
		t.Fatalf("unknown availability = %f", avail)
	}
}

func TestCheckAvailability(t *testing.T) {
	tr := NewTracker()
	agr := Agreement{Customer: "acme", AvailabilityTarget: 0.99}
	tr.MarkBorn("i1", 0)
	tr.MarkDown("i1", 0)
	tr.MarkUp("i1", time.Second) // 1s down of 10s = 90%
	if !tr.CheckAvailability("i1", agr, 10*time.Second) {
		t.Fatal("breach not detected")
	}
	vs := tr.Violations("i1")
	if len(vs) != 1 || vs[0].Resource != "availability" {
		t.Fatalf("violations = %v", vs)
	}
	// Long uptime heals the ratio: 1s down of 1000s = 99.9%.
	if tr.CheckAvailability("i1", agr, 1000*time.Second) {
		t.Fatal("healthy availability flagged")
	}
}

func TestInstancesListing(t *testing.T) {
	tr := NewTracker()
	tr.MarkBorn("b", 0)
	tr.Record(Violation{Instance: "a"})
	got := tr.Instances()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Instances = %v", got)
	}
}
