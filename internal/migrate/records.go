// The unified replicated-directory record layer: one generic engine
// under ALL record families the directory replicates per holder node —
// service endpoints (key = service name), artifact holdings (key =
// content digest) and component health records (key = component name).
// Everything a family needs to stay convergent and observable is
// defined once here:
//
//   - storage keyed (record key → holder node → record) with total-order
//     put/remove and authoritative per-holder sync;
//   - exact delta computation — an unchanged record replayed by a resync
//     appears in no delta list, so a converged anti-entropy replay is
//     silent and subscribers never see spurious events;
//   - deterministic dead-holder pruning on view changes, plus a
//     deliver-side membership filter so a mutation sequenced before a
//     holder's departure but applied after it (the view-install flush
//     path) cannot resurrect a dead holder's records on some replicas;
//   - per-family counters for the cluster metrics plane.
//
// The migration module instantiates the engine three times; the family structs
// below carry the per-family wiring (key extraction, wire-message
// constructors, owned-set) while module.go owns the lock, the broadcast
// submission order and the gcs plumbing.

package migrate

import (
	"sort"

	"dosgi/internal/health"
)

// ChangeType enumerates replicated record-change kinds, shared by every
// record family of the directory.
type ChangeType int

// Record changes, derived from totally-ordered directory mutations (and
// from deterministic view-change pruning), so every node observes the
// same sequence.
const (
	// Added: a new (key, holder) record appeared.
	Added ChangeType = iota + 1
	// Updated: an existing record re-announced (content changed, or an
	// identical incremental re-put — how a holder signals MODIFIED).
	Updated
	// Removed: a record withdrew or its holder node departed.
	Removed
)

func (t ChangeType) String() string {
	switch t {
	case Added:
		return "ADDED"
	case Updated:
		return "UPDATED"
	case Removed:
		return "REMOVED"
	}
	return "UNKNOWN"
}

// Change reports one replicated record change of family V — the exact
// deltas subscribers consume.
type Change[V any] struct {
	Type ChangeType
	Info V
}

// Endpoint-record changes keep their established names; they are the
// same types the artifact family now shares.
type (
	// EndpointChangeType aliases the shared change kind.
	EndpointChangeType = ChangeType
	// EndpointChange reports one replicated endpoint-record change — the
	// feed the remote event brokers push to subscribed importers.
	EndpointChange = Change[EndpointInfo]
	// ArtifactChange reports one replicated artifact-record change — the
	// feed replication duty and provisioning hooks consume. Exact deltas:
	// a converged resync produces none.
	ArtifactChange = Change[ArtifactInfo]
	// HealthChange reports one replicated health-record change — the feed
	// the health alert bridges and autonomic rules consume. Exact deltas:
	// a converged resync produces none, so steady-state health is silent.
	HealthChange = Change[health.Record]
)

// Endpoint-change kinds (aliases of the shared kinds).
const (
	EndpointAdded   = Added
	EndpointUpdated = Updated
	EndpointRemoved = Removed
)

// recordTable is the storage half of the engine: one family's records
// keyed (key → holder → record). It is not self-locking — the Directory
// guards both tables with its single mutex so cross-family reads stay
// consistent.
type recordTable[V comparable] struct {
	key    func(V) string
	holder func(V) string
	recs   map[string]map[string]V
}

func newRecordTable[V comparable](key, holder func(V) string) *recordTable[V] {
	return &recordTable[V]{key: key, holder: holder, recs: make(map[string]map[string]V)}
}

// put upserts a record, reporting whether a record for (key, holder)
// already existed — callers turn the result into Added vs Updated.
func (t *recordTable[V]) put(v V) (existed bool) {
	byHolder := t.recs[t.key(v)]
	if byHolder == nil {
		byHolder = make(map[string]V)
		t.recs[t.key(v)] = byHolder
	}
	_, existed = byHolder[t.holder(v)]
	byHolder[t.holder(v)] = v
	return existed
}

// remove deletes holder's record for key, returning the removed record
// (ok=false when there was none).
func (t *recordTable[V]) remove(key, holder string) (V, bool) {
	byHolder := t.recs[key]
	v, ok := byHolder[holder]
	delete(byHolder, holder)
	if len(byHolder) == 0 {
		delete(t.recs, key)
	}
	return v, ok
}

// removeOf deletes every record of holder (crash or graceful leave,
// applied deterministically on view change) and returns the removed
// records sorted by key.
func (t *recordTable[V]) removeOf(holder string) []V {
	return t.removeOfMatching(holder, nil)
}

// removeOfMatching deletes holder's records whose keys satisfy match
// (nil matches everything) — the shard-scoped prune: a holder departing
// one shard's view loses only that shard's records.
func (t *recordTable[V]) removeOfMatching(holder string, match func(string) bool) []V {
	var removed []V
	for key, byHolder := range t.recs {
		if match != nil && !match(key) {
			continue
		}
		if v, ok := byHolder[holder]; ok {
			removed = append(removed, v)
			delete(byHolder, holder)
		}
		if len(byHolder) == 0 {
			delete(t.recs, key)
		}
	}
	t.sortByKey(removed)
	return removed
}

// replaceOf makes vs the complete record set of holder, dropping any
// stale records — the authoritative resync each node broadcasts on view
// change and anti-entropy ticks. The returned deltas are exact (an
// unchanged record appears in neither list), so a replayed sync of a
// converged directory produces no events. Records claiming another
// holder are ignored: a node only speaks for itself in a sync.
func (t *recordTable[V]) replaceOf(holder string, vs []V) (added, updated, removed []V) {
	return t.replaceOfMatching(holder, vs, nil)
}

// replaceOfMatching is replaceOf restricted to keys satisfying match
// (nil matches everything): vs becomes holder's complete record set
// WITHIN the matched key subset, and records outside it are untouched.
// This is what makes per-shard syncs safe — a shard's authoritative
// replacement must not erase the holder's records living in other
// shards' total orders. Incoming records outside the subset are ignored
// for the same reason: a shard only speaks for its own keys.
func (t *recordTable[V]) replaceOfMatching(holder string, vs []V, match func(string) bool) (added, updated, removed []V) {
	prev := make(map[string]V)
	for key, byHolder := range t.recs {
		if match != nil && !match(key) {
			continue
		}
		if v, ok := byHolder[holder]; ok {
			prev[key] = v
		}
	}
	next := make(map[string]bool, len(vs))
	for _, v := range vs {
		if t.holder(v) != holder {
			continue
		}
		if match != nil && !match(t.key(v)) {
			continue
		}
		key := t.key(v)
		next[key] = true
		old, existed := prev[key]
		switch {
		case !existed:
			added = append(added, v)
		case old != v:
			updated = append(updated, v)
		}
		t.put(v)
	}
	for key, old := range prev {
		if !next[key] {
			removed = append(removed, old)
			t.remove(key, holder)
		}
	}
	t.sortByKey(added)
	t.sortByKey(updated)
	t.sortByKey(removed)
	return added, updated, removed
}

// forKey returns the records of key, sorted by holder.
func (t *recordTable[V]) forKey(key string) []V {
	out := make([]V, 0, len(t.recs[key]))
	for _, v := range t.recs[key] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return t.holder(out[i]) < t.holder(out[j]) })
	return out
}

// all returns every record, sorted by key then holder.
func (t *recordTable[V]) all() []V {
	var out []V
	for _, byHolder := range t.recs {
		for _, v := range byHolder {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if t.key(out[i]) != t.key(out[j]) {
			return t.key(out[i]) < t.key(out[j])
		}
		return t.holder(out[i]) < t.holder(out[j])
	})
	return out
}

func (t *recordTable[V]) sortByKey(vs []V) {
	sort.Slice(vs, func(i, j int) bool { return t.key(vs[i]) < t.key(vs[j]) })
}

// FamilyStats counts one record family's replicated-directory activity
// on one node: wire messages applied, exact deltas emitted, silent
// (already-converged) resyncs, records pruned with a departed holder and
// mutations filtered because their holder had already left the view.
type FamilyStats struct {
	Puts, Removes, Syncs    int64
	Added, Updated, Removed int64
	// SilentSyncs counts applied syncs that changed nothing — the
	// signature of converged anti-entropy.
	SilentSyncs int64
	// Pruned counts records dropped deterministically with a dead holder
	// on view changes.
	Pruned int64
	// Filtered counts put/remove/sync messages dropped because the
	// holder was no longer a view member at apply time.
	Filtered int64
}

// recordFamily is the module-side half of the engine for one family:
// the records this node itself owns (re-broadcast on every view change
// and anti-entropy tick), the exact-delta subscriber hooks, wire-message
// constructors and the family's counters. Guarded by the module's lock.
type recordFamily[V comparable] struct {
	key   func(V) string
	owned map[string]V
	hooks []func(Change[V])
	stats FamilyStats

	// Wire-message constructors: put/remove are the incremental
	// mutations, sync the authoritative per-holder replacement.
	wirePut    func(V) any
	wireRemove func(key, node string) any
	wireSync   func(node string, infos []V) any
}

// localSet snapshots the owned records sorted by key. Callers hold the
// module lock.
func (f *recordFamily[V]) localSet() []V {
	infos := make([]V, 0, len(f.owned))
	for _, v := range f.owned {
		infos = append(infos, v)
	}
	sort.Slice(infos, func(i, j int) bool { return f.key(infos[i]) < f.key(infos[j]) })
	return infos
}

// changes maps one delta list of one kind onto change events.
func changes[V comparable](kind ChangeType, infos []V) []Change[V] {
	out := make([]Change[V], len(infos))
	for i, v := range infos {
		out[i] = Change[V]{Type: kind, Info: v}
	}
	return out
}
