// The sharded record engine: the replicated directory's three record
// families can be partitioned into N rendezvous-hashed shards, each
// backed by its own total-order GCS group with its own coordinator,
// epoch log, membership view and anti-entropy timer. A record key lives
// in exactly one shard, so per-key mutation order is still pinned by one
// sequencer, while sequencing load, retransmission-log pressure and
// slow-member blast radius divide across shards. The ShardRouter is a
// pure function of (key, shard count) — identical on every node, and
// adding records never moves existing keys while the shard count is
// fixed. Module stays the single public surface: announce/withdraw calls
// route to the owning shard, subscriber hooks observe the merged
// exact-delta stream of all shards, and the single-shard layout (the
// default) degenerates to the original one-group engine with no extra
// machinery.

package migrate

import (
	"hash/fnv"
	"sync"

	"dosgi/internal/clock"
	"dosgi/internal/gcs"
	"dosgi/internal/health"
)

// ShardRouter deterministically maps record keys onto directory shards
// with rendezvous (highest-random-weight) hashing: every key scores
// each shard and picks the highest score. All nodes compute the same
// placement from (key, shard count) alone — no coordination, no
// placement table — and a fixed shard count never rebalances: a key's
// winning shard cannot change unless shards are added or removed.
type ShardRouter struct {
	n int
}

// NewShardRouter returns a router over n shards (n < 1 is treated as 1).
func NewShardRouter(n int) ShardRouter {
	if n < 1 {
		n = 1
	}
	return ShardRouter{n: n}
}

// Shards returns the shard count.
func (r ShardRouter) Shards() int { return r.n }

// Shard returns the shard owning key.
func (r ShardRouter) Shard(key string) int {
	if r.n <= 1 {
		return 0
	}
	best, bestScore := 0, rendezvousScore(key, 0)
	for s := 1; s < r.n; s++ {
		if score := rendezvousScore(key, s); score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// rendezvousScore is the (key, shard) weight: FNV-1a over the key and
// the shard index, stable across processes and Go versions.
func rendezvousScore(key string, shard int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0, byte(shard), byte(shard >> 8), byte(shard >> 16), byte(shard >> 24)})
	return h.Sum64()
}

// dirShard is one partition of the module's record engine: the GCS
// member carrying this shard's broadcasts, the per-shard lock that pins
// broadcast submission order to local mutation order (the same
// invariant the single-group engine held module-wide, now held per
// shard), and this shard's slice of the three record families. match
// reports whether a key belongs to this shard (nil on the single-shard
// layout: every key does).
type dirShard struct {
	id     int
	nodeID string
	m      *Module
	member *gcs.Member
	match  func(key string) bool

	mu          sync.Mutex
	announced   bool
	resyncTimer clock.Timer

	eps  *recordFamily[EndpointInfo]
	arts *recordFamily[ArtifactInfo]
	hlth *recordFamily[health.Record]
}

// newDirShard builds one shard with fresh record families.
func newDirShard(m *Module, id int, member *gcs.Member, match func(string) bool) *dirShard {
	return &dirShard{
		id:     id,
		nodeID: m.cfg.NodeID,
		m:      m,
		member: member,
		match:  match,
		eps: &recordFamily[EndpointInfo]{
			key:        func(e EndpointInfo) string { return e.Service },
			owned:      make(map[string]EndpointInfo),
			wirePut:    func(e EndpointInfo) any { return endpointPut{Info: e} },
			wireRemove: func(service, node string) any { return endpointRemove{Service: service, Node: node} },
			wireSync:   func(node string, infos []EndpointInfo) any { return endpointSync{Node: node, Infos: infos} },
		},
		arts: &recordFamily[ArtifactInfo]{
			key:        func(a ArtifactInfo) string { return a.Digest },
			owned:      make(map[string]ArtifactInfo),
			wirePut:    func(a ArtifactInfo) any { return artifactPut{Info: a} },
			wireRemove: func(digest, node string) any { return artifactRemove{Digest: digest, Node: node} },
			wireSync:   func(node string, infos []ArtifactInfo) any { return artifactSync{Node: node, Infos: infos} },
		},
		hlth: &recordFamily[health.Record]{
			key:        func(h health.Record) string { return h.Component },
			owned:      make(map[string]health.Record),
			wirePut:    func(h health.Record) any { return healthPut{Info: h} },
			wireRemove: func(component, node string) any { return healthRemove{Component: component, Node: node} },
			wireSync:   func(node string, infos []health.Record) any { return healthSync{Node: node, Infos: infos} },
		},
	}
}

// broadcast sends a totally-ordered message on this shard's group,
// silently dropping it when the member is not yet in a view (the first
// per-shard view announce re-publishes everything).
func (s *dirShard) broadcast(body any) {
	_ = s.member.Broadcast(body, gcs.Total)
}

// holderLive reports whether a record holder is a member of this
// shard's current view. Shard groups may run under ranked member ids
// (one group per shard, coordinators spread by rank — see gcs.RankedID),
// so view membership is compared on the plain node id.
func (s *dirShard) holderLive(holder string) bool {
	for _, id := range s.member.View().Members {
		if gcs.NodeOf(id) == holder {
			return true
		}
	}
	return false
}

// viewNodeSet maps a shard view's member ids (possibly ranked) to the
// plain node-id set used for dead-holder pruning.
func viewNodeSet(v gcs.View) map[string]bool {
	set := make(map[string]bool, len(v.Members))
	for _, id := range v.Members {
		set[gcs.NodeOf(id)] = true
	}
	return set
}

// onView handles this shard's membership changes: mark the shard
// announced, re-broadcast the authoritative per-shard record sets
// (anti-entropy against partitioned withdrawals) and deterministically
// prune records whose holders left the shard view. Each shard's
// membership drives its own pruning — a node partitioned out of one
// shard group loses only that shard's records until the heal.
func (s *dirShard) onView(v gcs.View) {
	s.mu.Lock()
	s.announced = true
	// Snapshot and broadcast under the shard lock: a sync submitted
	// after a concurrent announce/withdraw must reflect it, or per-shard
	// total-order sequencing could apply the stale snapshot last.
	s.broadcast(s.eps.wireSync(s.nodeID, s.eps.localSet()))
	s.broadcast(s.arts.wireSync(s.nodeID, s.arts.localSet()))
	s.broadcast(s.hlth.wireSync(s.nodeID, s.hlth.localSet()))
	s.mu.Unlock()

	memberSet := viewNodeSet(v)
	d := s.m.dir
	pruneDeadHolders(s, s.eps, func(e EndpointInfo) string { return e.Node },
		d.Endpoints, func(node string) []EndpointInfo {
			return d.removeEndpointsOfMatching(node, s.match)
		}, memberSet)
	pruneDeadHolders(s, s.arts, func(a ArtifactInfo) string { return a.Node },
		d.Artifacts, func(node string) []ArtifactInfo {
			return d.removeArtifactsOfMatching(node, s.match)
		}, memberSet)
	pruneDeadHolders(s, s.hlth, func(h health.Record) string { return h.Node },
		d.HealthRecords, func(node string) []health.Record {
			return d.removeHealthOfMatching(node, s.match)
		}, memberSet)
}

// onDeliver applies this shard's replicated record mutations. Instance,
// node and migration traffic stays on the main group; only the three
// record families ride shard groups.
func (s *dirShard) onDeliver(msg gcs.Message) {
	d := s.m.dir
	switch body := msg.Body.(type) {
	case endpointPut:
		applyRecordPut(s, s.eps, body.Info.Node, body.Info, d.PutEndpoint)
	case endpointRemove:
		applyRecordRemove(s, s.eps, body.Node, body.Service, d.RemoveEndpoint)
	case endpointSync:
		applyRecordSync(s, s.eps, body.Node, body.Infos, func(node string, infos []EndpointInfo) ([]EndpointInfo, []EndpointInfo, []EndpointInfo) {
			return d.replaceEndpointsOfMatching(node, infos, s.match)
		})
	case artifactPut:
		applyRecordPut(s, s.arts, body.Info.Node, body.Info, d.PutArtifact)
	case artifactRemove:
		applyRecordRemove(s, s.arts, body.Node, body.Digest, d.RemoveArtifact)
	case artifactSync:
		applyRecordSync(s, s.arts, body.Node, body.Infos, func(node string, infos []ArtifactInfo) ([]ArtifactInfo, []ArtifactInfo, []ArtifactInfo) {
			return d.replaceArtifactsOfMatching(node, infos, s.match)
		})
	case healthPut:
		applyRecordPut(s, s.hlth, body.Info.Node, body.Info, d.PutHealth)
	case healthRemove:
		applyRecordRemove(s, s.hlth, body.Node, body.Component, d.RemoveHealth)
	case healthSync:
		applyRecordSync(s, s.hlth, body.Node, body.Infos, func(node string, recs []health.Record) ([]health.Record, []health.Record, []health.Record) {
			return d.replaceHealthOfMatching(node, recs, s.match)
		})
	}
}

// antiEntropy re-broadcasts this shard's authoritative record sets on
// the shard's own timer. Exact deltas mean a converged shard produces
// no events; per-shard timers mean one slow shard group never delays
// another shard's convergence.
func (s *dirShard) antiEntropy() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.announced {
		return
	}
	s.broadcast(s.eps.wireSync(s.nodeID, s.eps.localSet()))
	s.broadcast(s.arts.wireSync(s.nodeID, s.arts.localSet()))
	s.broadcast(s.hlth.wireSync(s.nodeID, s.hlth.localSet()))
}

// ShardStats is one shard's view of the three family counters plus the
// shard group's membership size — the per-shard health line operators
// read off the metrics plane.
type ShardStats struct {
	Shard     int
	Members   int
	Endpoints FamilyStats
	Artifacts FamilyStats
	Health    FamilyStats
}
