package migrate

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/core"
	"dosgi/internal/gcs"
	"dosgi/internal/module"
	"dosgi/internal/netsim"
	"dosgi/internal/san"
)

// realClockNode is one node of the real-clock harness below.
type realClockNode struct {
	id     string
	member *gcs.Member
	mod    *Module
}

// newRealClockPair wires two migrate modules over netsim driven by the
// REAL clock: deliveries, timers and anti-entropy run on concurrent
// goroutines instead of the single-threaded simulator.
func newRealClockPair(t *testing.T, resyncEvery time.Duration) (sched *clock.Real, nodes [2]*realClockNode) {
	t.Helper()
	sched = clock.NewReal()
	t.Cleanup(sched.Stop)
	net := netsim.NewNetwork(sched, netsim.WithLatency(200*time.Microsecond))
	store := san.NewStore(sched)
	gdir := gcs.NewDirectory()
	defs := module.NewDefinitionRegistry()

	for i := range nodes {
		id := fmt.Sprintf("node%02d", i)
		nic := net.AttachNode(id)
		ip := netsim.IP("ip-" + id)
		if err := net.AssignIP(ip, id); err != nil {
			t.Fatal(err)
		}
		host := module.New(module.WithName(id), module.WithDefinitions(defs))
		if err := host.Start(); err != nil {
			t.Fatal(err)
		}
		mgr := core.NewManager(host, core.Hooks{})
		member, err := gcs.NewMember(sched, gcs.Config{
			NodeID:    id,
			Addr:      netsim.Addr{IP: ip, Port: 7000},
			NIC:       nic,
			Directory: gdir,
		})
		if err != nil {
			t.Fatal(err)
		}
		mod, err := NewModule(Config{
			NodeID: id, Sched: sched, Member: member, Store: store, Manager: mgr,
			CPUCapacity: 1000, MemCapacity: 1 << 30,
			ResyncEvery: resyncEvery,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mod.Start(); err != nil {
			t.Fatal(err)
		}
		if err := member.Start(); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &realClockNode{id: id, member: member, mod: mod}
	}

	waitFor(t, 5*time.Second, "group formation", func() bool {
		return len(nodes[0].member.View().Members) == 2 &&
			len(nodes[1].member.View().Members) == 2
	})
	return sched, nodes
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRealClockBroadcastOrdering is the real-clock ordering stress the
// ROADMAP audit called for: announce/withdraw churn in BOTH record
// families races an aggressive anti-entropy ticker on concurrent
// goroutines. Because every record broadcast — puts, removes and the
// resync snapshots — submits under the module lock, snapshot order
// equals sequencing order: after the churn the directories converge to
// exactly the final owned sets, and a converged directory stays silent
// (no flapping deltas from stale snapshots sequenced late). Run under
// -race this also proves the owned-set snapshots are data-race-free.
func TestRealClockBroadcastOrdering(t *testing.T) {
	const resync = 10 * time.Millisecond
	_, nodes := newRealClockPair(t, resync)
	a, b := nodes[0], nodes[1]

	// A steady export on node01 must survive node00's churn untouched.
	b.mod.AnnounceEndpointFor("steady", "ip-node01:7100", "")
	b.mod.AnnounceArtifact(art("steady-digest", b.id))

	const (
		names  = 16  // distinct services / digests churned
		rounds = 250 // announce/withdraw rounds per family
	)
	done := make(chan struct{}, 2)
	go func() { // endpoint churn
		for i := 0; i < rounds; i++ {
			svc := fmt.Sprintf("svc.%02d", i%names)
			a.mod.AnnounceEndpointFor(svc, fmt.Sprintf("ip-node00:%d", 7100+i%3), "")
			if i%3 == 2 {
				a.mod.WithdrawEndpoint(svc)
			}
		}
		done <- struct{}{}
	}()
	go func() { // artifact churn
		for i := 0; i < rounds; i++ {
			info := art(fmt.Sprintf("digest-%02d", i%names), a.id)
			info.Location = fmt.Sprintf("app:%d", i) // content drift → Updated deltas
			a.mod.AnnounceArtifact(info)
			if i%3 == 2 {
				a.mod.WithdrawArtifact(info.Digest)
			}
		}
		done <- struct{}{}
	}()
	<-done
	<-done

	// Deterministic final state on node00.
	for i := 0; i < names; i++ {
		a.mod.WithdrawEndpoint(fmt.Sprintf("svc.%02d", i))
		a.mod.WithdrawArtifact(fmt.Sprintf("digest-%02d", i))
	}
	finalEp := EndpointInfo{Service: "final", Node: a.id, Addr: "ip-node00:7100"}
	finalArt := art("final-digest", a.id)
	a.mod.AnnounceEndpointFor(finalEp.Service, finalEp.Addr, "")
	a.mod.AnnounceArtifact(finalArt)

	wantEps := []EndpointInfo{finalEp, {Service: "steady", Node: b.id, Addr: "ip-node01:7100"}}
	wantArts := []ArtifactInfo{art("final-digest", a.id), art("steady-digest", b.id)}
	converged := func() bool {
		for _, n := range nodes {
			if !reflect.DeepEqual(n.mod.Directory().Endpoints(), wantEps) ||
				!reflect.DeepEqual(n.mod.Directory().Artifacts(), wantArts) {
				return false
			}
		}
		return true
	}
	waitFor(t, 10*time.Second, "directory convergence", converged)

	// Stale snapshots sequenced after the final announcements would
	// surface here: across many further resync rounds the directories
	// must stay exactly converged and emit no deltas at all.
	epBefore, artBefore := b.mod.EndpointStats(), b.mod.ArtifactStats()
	time.Sleep(20 * resync)
	if !converged() {
		t.Fatalf("directories flapped after convergence:\nA eps %+v arts %+v\nB eps %+v arts %+v",
			a.mod.Directory().Endpoints(), a.mod.Directory().Artifacts(),
			b.mod.Directory().Endpoints(), b.mod.Directory().Artifacts())
	}
	epAfter, artAfter := b.mod.EndpointStats(), b.mod.ArtifactStats()
	if epAfter.Added != epBefore.Added || epAfter.Updated != epBefore.Updated || epAfter.Removed != epBefore.Removed {
		t.Fatalf("endpoint deltas after convergence: before %+v after %+v", epBefore, epAfter)
	}
	if artAfter.Added != artBefore.Added || artAfter.Updated != artBefore.Updated || artAfter.Removed != artBefore.Removed {
		t.Fatalf("artifact deltas after convergence: before %+v after %+v", artBefore, artAfter)
	}
	if artAfter.Syncs <= artBefore.Syncs || artAfter.SilentSyncs <= artBefore.SilentSyncs {
		t.Fatalf("anti-entropy not running silently: before %+v after %+v", artBefore, artAfter)
	}
}
