package migrate

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dosgi/internal/gcs"
)

// TestArtifactAntiEntropyHealsBlip: an artifact announcement lost to a
// partition blip too short to change the membership view has no view
// change to trigger a resync — the periodic anti-entropy replay (which
// artifacts now share with endpoints) converges it. The blip cuts the
// announcer off from the coordinator, so the order request itself is
// lost: gap retransmission cannot help (nothing was sequenced) and only
// the periodic sync carries the record out.
func TestArtifactAntiEntropyHealsBlip(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()

	var changes []ArtifactChange
	tc.nodes["node02"].mod.OnArtifactChange(func(ch ArtifactChange) {
		changes = append(changes, ch)
	})
	viewsBefore := tc.nodes["node01"].member.ViewChanges()

	// node01 announces while cut off from the coordinator: the orderReq
	// is lost in flight, so no replica ever sequences the put.
	tc.net.Partition("node00", "node01")
	tc.nodes["node01"].mod.AnnounceArtifact(art("blip", "node01"))
	tc.eng.RunFor(50 * time.Millisecond) // well inside FailTimeout
	tc.net.Heal("node00", "node01")
	tc.eng.RunFor(50 * time.Millisecond)

	if got := tc.nodes["node02"].mod.Directory().ArtifactReplicas("blip"); len(got) != 0 {
		t.Fatalf("put survived the blip (%+v); the test would prove nothing", got)
	}

	// Within 2×ResyncEvery the periodic sync must have replayed it.
	tc.eng.RunFor(2 * DefaultResyncEvery)
	for id, n := range tc.nodes {
		reps := n.mod.Directory().ArtifactReplicas("blip")
		if len(reps) != 1 || reps[0].Node != "node01" {
			t.Fatalf("%s replicas after anti-entropy = %+v", id, reps)
		}
	}
	if tc.nodes["node01"].member.ViewChanges() != viewsBefore {
		t.Fatal("healed through a view change instead of anti-entropy")
	}
	// The subscriber saw exactly one real change: the Added.
	if len(changes) != 1 || changes[0].Type != Added || changes[0].Info.Digest != "blip" {
		t.Fatalf("artifact changes = %+v, want exactly one Added", changes)
	}

	// Converged directory: further resync rounds replay the same sets and
	// must emit nothing — the exact-delta property that makes periodic
	// artifact anti-entropy safe.
	before := tc.nodes["node02"].mod.ArtifactStats()
	tc.eng.RunFor(3 * DefaultResyncEvery)
	after := tc.nodes["node02"].mod.ArtifactStats()
	if after.Syncs <= before.Syncs {
		t.Fatalf("no further syncs applied (before %+v, after %+v)", before, after)
	}
	if after.SilentSyncs <= before.SilentSyncs {
		t.Fatalf("converged resyncs not silent (before %+v, after %+v)", before, after)
	}
	if after.Added != before.Added || after.Updated != before.Updated || after.Removed != before.Removed {
		t.Fatalf("converged resyncs emitted deltas (before %+v, after %+v)", before, after)
	}
	if len(changes) != 1 {
		t.Fatalf("hooks fired on converged resync: %+v", changes)
	}
}

// TestDeadHolderMutationsFiltered pins the deliver-side membership
// filter: a record mutation whose holder already left the view — the
// view-install flush can apply messages sequenced before a departure —
// must be dropped on every replica, or dead-holder pruning would be
// nondeterministic (resurrected records only on the replicas that
// buffered the message across the view change).
func TestDeadHolderMutationsFiltered(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.settle()
	mod := tc.nodes["node00"].mod

	ghostArt := art("ghost-digest", "node99")
	mod.shards[0].onDeliver(gcs.Message{Body: artifactPut{Info: ghostArt}})
	mod.shards[0].onDeliver(gcs.Message{Body: artifactSync{Node: "node99", Infos: []ArtifactInfo{ghostArt}}})
	if got := mod.Directory().Artifacts(); len(got) != 0 {
		t.Fatalf("dead holder's artifact records applied: %+v", got)
	}
	mod.shards[0].onDeliver(gcs.Message{Body: endpointPut{Info: EndpointInfo{Service: "svc", Node: "node99", Addr: "x:1"}}})
	if got := mod.Directory().Endpoints(); len(got) != 0 {
		t.Fatalf("dead holder's endpoint record applied: %+v", got)
	}
	if st := mod.ArtifactStats(); st.Filtered != 2 {
		t.Fatalf("artifact Filtered = %d, want 2", st.Filtered)
	}
	if st := mod.EndpointStats(); st.Filtered != 1 {
		t.Fatalf("endpoint Filtered = %d, want 1", st.Filtered)
	}
	// Mutations from live members still apply.
	liveArt := art("live-digest", "node01")
	mod.shards[0].onDeliver(gcs.Message{Body: artifactPut{Info: liveArt}})
	if got := mod.Directory().ArtifactReplicas("live-digest"); len(got) != 1 {
		t.Fatalf("live holder's record dropped: %+v", got)
	}
}

// TestArtifactPruningDeterministicUnderChurn is the seeded regression
// for artifactSync dead-holder pruning: a holder that announces and
// resyncs right up to its crash, across several seeds (different
// interleavings of in-flight broadcasts, failure detection and view
// installation), must leave every survivor with the identical artifact
// directory and no record naming the dead holder.
func TestArtifactPruningDeterministicUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := newTestClusterSeed(t, 4, seed)
			tc.settle()
			for id, n := range tc.nodes {
				n.mod.AnnounceArtifact(art("base-"+id, id))
			}
			tc.settle()

			// The victim announces fresh records and forces a resync
			// broadcast, then crashes a seed-dependent instant later —
			// the messages race the failure detection.
			victim := tc.nodes["node03"]
			victim.mod.AnnounceArtifact(art("late-a", "node03"))
			victim.mod.AnnounceArtifact(art("late-b", "node03"))
			victim.mod.antiEntropy()
			tc.eng.RunFor(time.Duration(seed) * 700 * time.Microsecond)
			tc.crash("node03")
			tc.eng.RunFor(3 * time.Second)

			survivors := []string{"node00", "node01", "node02"}
			ref := tc.nodes[survivors[0]].mod.Directory().Artifacts()
			for _, rec := range ref {
				if rec.Node == "node03" {
					t.Fatalf("phantom record of dead holder survived: %+v", rec)
				}
			}
			if len(ref) != 3 { // one base artifact per survivor
				t.Fatalf("reference directory = %+v", ref)
			}
			for _, id := range survivors[1:] {
				got := tc.nodes[id].mod.Directory().Artifacts()
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("directories diverged after churn:\n%s: %+v\n%s: %+v",
						survivors[0], ref, id, got)
				}
			}
		})
	}
}

// TestWithdrawArtifactConvergesAndNotifies: the withdraw path through
// the shared engine — owned-set removal and broadcast submit under the
// module lock, every replica emits exactly one Removed delta, and later
// anti-entropy replays do not resurrect the record.
func TestWithdrawArtifactConvergesAndNotifies(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()
	var changes []ArtifactChange
	tc.nodes["node02"].mod.OnArtifactChange(func(ch ArtifactChange) {
		changes = append(changes, ch)
	})

	tc.nodes["node01"].mod.AnnounceArtifact(art("w", "node01"))
	tc.settle()
	if len(changes) != 1 || changes[0].Type != Added {
		t.Fatalf("after announce: %+v", changes)
	}
	tc.nodes["node01"].mod.WithdrawArtifact(art("w", "node01").Digest)
	tc.settle()
	if len(changes) != 2 || changes[1].Type != Removed {
		t.Fatalf("after withdraw: %+v", changes)
	}
	tc.eng.RunFor(2 * DefaultResyncEvery)
	for id, n := range tc.nodes {
		if got := n.mod.Directory().Artifacts(); len(got) != 0 {
			t.Fatalf("%s resurrected withdrawn artifact: %+v", id, got)
		}
	}
	if len(changes) != 2 {
		t.Fatalf("spurious changes after withdraw: %+v", changes)
	}
}
