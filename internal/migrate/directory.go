// Package migrate implements the paper's Migration Module (§3.2): using
// the group communication substrate it maintains "knowledge of the
// available nodes and its resources" and of "the virtual instances running
// on each node" (issue 1), reacts to membership changes — graceful leaves
// migrate instances away, crashes trigger decentralized redeployment on the
// survivors (issue 2) — ships framework state through the SAN (issue 3),
// and invokes relocation hooks so service addresses follow instances
// (issue 4, realized by netsim IP takeover or ipvs re-registration at the
// cluster layer).
package migrate

import (
	"sort"
	"sync"

	"dosgi/internal/core"
	"dosgi/internal/health"
	"dosgi/internal/manifest"
)

// InstanceInfo is the directory's record of one virtual instance.
type InstanceInfo struct {
	ID core.InstanceID `json:"id"`
	// Node currently responsible for the instance.
	Node string `json:"node"`
	// CPU and Memory are the instance's resource requirements, consulted
	// by placement.
	CPU    int64 `json:"cpu"`
	Memory int64 `json:"memory"`
	// Priority orders instances when capacity runs short.
	Priority int `json:"priority"`
	// CheckpointPath locates the instance's durable state on the SAN.
	CheckpointPath string `json:"checkpointPath"`
	// Running records whether the instance was serving.
	Running bool `json:"running"`
}

// NodeInfo is the directory's record of one node's capacity.
type NodeInfo struct {
	Node        string `json:"node"`
	CPUCapacity int64  `json:"cpuCapacity"`
	MemCapacity int64  `json:"memCapacity"`
}

// EndpointInfo is the directory's record of one remotely invocable service
// replica: which node exports it and the transport address of that node's
// remote-services listener. The import-side Invoker resolves replicas from
// these records. Instance names the virtual framework exporting the
// service ("" for host-level exports); a migrated instance's endpoints are
// re-announced from the new host node under the same instance id, so
// importers can follow a service across relocations.
type EndpointInfo struct {
	Service  string `json:"service"`
	Node     string `json:"node"`
	Addr     string `json:"addr"`
	Instance string `json:"instance,omitempty"`
}

// ArtifactInfo is the directory's record of one replica of a provisioned
// bundle artifact: the artifact's identity (content digest, install
// location, bundle coordinates, chunking geometry, signer) plus the node
// holding a copy. The provisioning subsystem announces holdings through
// these records and resolves fetch replicas from them — the decentralized
// component repository replacing a centralized deployment directory.
type ArtifactInfo struct {
	// Digest is the hex SHA-256 of the artifact payload: the artifact's
	// content-addressed identity.
	Digest string `json:"digest"`
	// Location is the bundle install location the artifact deploys under.
	Location string `json:"location"`
	// SymbolicName/Version are the bundle coordinates from the manifest,
	// replicated so dependency resolution can search the index without
	// fetching payloads.
	SymbolicName string `json:"symbolicName"`
	Version      string `json:"version"`
	// Size is the payload length in bytes; ChunkSize and Chunks describe
	// how fetchers address pieces of it.
	Size      int64 `json:"size"`
	ChunkSize int64 `json:"chunkSize"`
	Chunks    int64 `json:"chunks"`
	// Signer is the subject that signed the artifact; Signature
	// authenticates (signer, digest) under the verifier's keyring.
	Signer    string `json:"signer"`
	Signature string `json:"signature"`
	// Node holds a copy ("" in contexts describing the artifact itself).
	Node string `json:"node"`
}

// Directory is each node's replica of the cluster state. All mutations
// arrive through totally-ordered broadcasts (or deterministic local
// application on view changes), so replicas converge. The endpoint,
// artifact and health record families are three instances of the same
// generic replicated record table (records.go): identical storage,
// identical exact-delta semantics.
type Directory struct {
	mu        sync.Mutex
	instances map[core.InstanceID]InstanceInfo
	nodes     map[string]NodeInfo
	endpoints *recordTable[EndpointInfo]  // key = service, holder = node
	artifacts *recordTable[ArtifactInfo]  // key = digest, holder = node
	healths   *recordTable[health.Record] // key = component, holder = node
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		instances: make(map[core.InstanceID]InstanceInfo),
		nodes:     make(map[string]NodeInfo),
		endpoints: newRecordTable(
			func(e EndpointInfo) string { return e.Service },
			func(e EndpointInfo) string { return e.Node }),
		artifacts: newRecordTable(
			func(a ArtifactInfo) string { return a.Digest },
			func(a ArtifactInfo) string { return a.Node }),
		healths: newRecordTable(
			func(h health.Record) string { return h.Component },
			func(h health.Record) string { return h.Node }),
	}
}

// PutInstance upserts an instance record.
func (d *Directory) PutInstance(info InstanceInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.instances[info.ID] = info
}

// RemoveInstance deletes an instance record.
func (d *Directory) RemoveInstance(id core.InstanceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.instances, id)
}

// Instance returns one record.
func (d *Directory) Instance(id core.InstanceID) (InstanceInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	info, ok := d.instances[id]
	return info, ok
}

// Instances returns all records sorted by id.
func (d *Directory) Instances() []InstanceInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]InstanceInfo, 0, len(d.instances))
	for _, info := range d.instances {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InstancesOn returns the records hosted by node, sorted by id.
func (d *Directory) InstancesOn(node string) []InstanceInfo {
	var out []InstanceInfo
	for _, info := range d.Instances() {
		if info.Node == node {
			out = append(out, info)
		}
	}
	return out
}

// PutNode upserts a node capacity record.
func (d *Directory) PutNode(info NodeInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nodes[info.Node] = info
}

// Node returns one node record.
func (d *Directory) Node(id string) (NodeInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	info, ok := d.nodes[id]
	return info, ok
}

// Nodes returns all node records sorted by id.
func (d *Directory) Nodes() []NodeInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeInfo, 0, len(d.nodes))
	for _, info := range d.nodes {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// PutEndpoint upserts a service endpoint record, reporting whether a
// record for (service, node) already existed — callers turn the result
// into REGISTERED vs MODIFIED service events.
func (d *Directory) PutEndpoint(info EndpointInfo) (existed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.put(info)
}

// RemoveEndpoint deletes the record of service on node, returning the
// removed record (ok=false when there was none).
func (d *Directory) RemoveEndpoint(service, node string) (EndpointInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.remove(service, node)
}

// RemoveEndpointsOf deletes every endpoint exported by node (crash or
// graceful leave, applied deterministically on view change) and returns
// the removed records sorted by service.
func (d *Directory) RemoveEndpointsOf(node string) []EndpointInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.removeOf(node)
}

// removeEndpointsOfMatching is RemoveEndpointsOf restricted to services
// satisfying match — the shard-scoped prune path.
func (d *Directory) removeEndpointsOfMatching(node string, match func(string) bool) []EndpointInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.removeOfMatching(node, match)
}

// ReplaceEndpointsOf makes infos the complete endpoint set of node,
// dropping any stale records — the authoritative resync each node
// broadcasts on view change, which re-converges replicas that missed
// incremental withdrawals during a partition. The returned deltas are
// exact (an unchanged record appears in neither list), so the resync a
// healed partition replays produces no spurious service events.
func (d *Directory) ReplaceEndpointsOf(node string, infos []EndpointInfo) (added, updated, removed []EndpointInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.replaceOf(node, infos)
}

// replaceEndpointsOfMatching is ReplaceEndpointsOf restricted to
// services satisfying match — the per-shard authoritative sync, which
// must not erase node's records owned by other shards' total orders.
func (d *Directory) replaceEndpointsOfMatching(node string, infos []EndpointInfo, match func(string) bool) (added, updated, removed []EndpointInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.replaceOfMatching(node, infos, match)
}

// EndpointsAt returns every endpoint record served at addr, sorted by
// service then node.
func (d *Directory) EndpointsAt(addr string) []EndpointInfo {
	var out []EndpointInfo
	for _, info := range d.Endpoints() {
		if info.Addr == addr {
			out = append(out, info)
		}
	}
	return out
}

// AddrInUse reports whether any endpoint record is served at addr — the
// cheap emptiness probe (early exit, no copying or sorting) the eager
// pool-pruning hook runs on every endpoint removal.
func (d *Directory) AddrInUse(addr string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, byNode := range d.endpoints.recs {
		for _, info := range byNode {
			if info.Addr == addr {
				return true
			}
		}
	}
	return false
}

// EndpointsFor returns the replicas of service, sorted by node.
func (d *Directory) EndpointsFor(service string) []EndpointInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.forKey(service)
}

// Endpoints returns every endpoint record, sorted by service then node.
func (d *Directory) Endpoints() []EndpointInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.endpoints.all()
}

// PutArtifact upserts an artifact-holding record, reporting whether a
// record for (digest, node) already existed — callers turn the result
// into Added vs Updated artifact changes.
func (d *Directory) PutArtifact(info ArtifactInfo) (existed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.put(info)
}

// RemoveArtifact deletes node's holding record for digest, returning the
// removed record (ok=false when there was none).
func (d *Directory) RemoveArtifact(digest, node string) (ArtifactInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.remove(digest, node)
}

// RemoveArtifactsOf deletes every holding record of node (crash or
// graceful leave, applied deterministically on view change) and returns
// the removed records sorted by digest.
func (d *Directory) RemoveArtifactsOf(node string) []ArtifactInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.removeOf(node)
}

// removeArtifactsOfMatching is RemoveArtifactsOf restricted to digests
// satisfying match — the shard-scoped prune path.
func (d *Directory) removeArtifactsOfMatching(node string, match func(string) bool) []ArtifactInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.removeOfMatching(node, match)
}

// ReplaceArtifactsOf makes infos the complete holding set of node — the
// anti-entropy resync broadcast on view changes and periodic resync
// ticks. The returned deltas are exact, matching ReplaceEndpointsOf: a
// replayed sync of a converged holding set produces no artifact changes,
// which is what makes periodic artifact anti-entropy safe to run.
func (d *Directory) ReplaceArtifactsOf(node string, infos []ArtifactInfo) (added, updated, removed []ArtifactInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.replaceOf(node, infos)
}

// replaceArtifactsOfMatching is ReplaceArtifactsOf restricted to
// digests satisfying match — the per-shard authoritative sync.
func (d *Directory) replaceArtifactsOfMatching(node string, infos []ArtifactInfo, match func(string) bool) (added, updated, removed []ArtifactInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.replaceOfMatching(node, infos, match)
}

// ArtifactReplicas returns the holding records of digest, sorted by node.
func (d *Directory) ArtifactReplicas(digest string) []ArtifactInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.forKey(digest)
}

// ArtifactByLocation returns one record of the artifact deploying at
// location. When a location was republished and several digests coexist,
// the highest bundle version wins (version ties break on the lower
// digest), so every replica deterministically resolves the newest
// content rather than an arbitrary hash.
func (d *Directory) ArtifactByLocation(location string) (ArtifactInfo, bool) {
	var best ArtifactInfo
	var bestV manifest.Version
	found := false
	for _, info := range d.Artifacts() {
		if info.Location != location {
			continue
		}
		v, _ := manifest.ParseVersion(info.Version) // zero on a bad record
		c := 1
		if found {
			c = v.Compare(bestV)
		}
		if c > 0 || (c == 0 && info.Digest < best.Digest) {
			best, bestV, found = info, v, true
		}
	}
	return best, found
}

// Artifacts returns every holding record, sorted by digest then node.
func (d *Directory) Artifacts() []ArtifactInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.artifacts.all()
}

// PutHealth upserts a component health record, reporting whether a
// record for (component, node) already existed — callers turn the result
// into Added vs Updated health changes.
func (d *Directory) PutHealth(rec health.Record) (existed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.put(rec)
}

// RemoveHealth deletes node's health record for component, returning the
// removed record (ok=false when there was none).
func (d *Directory) RemoveHealth(component, node string) (health.Record, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.remove(component, node)
}

// RemoveHealthOf deletes every health record of node (crash or graceful
// leave, applied deterministically on view change) and returns the
// removed records sorted by component — a dead node reports no health.
func (d *Directory) RemoveHealthOf(node string) []health.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.removeOf(node)
}

// removeHealthOfMatching is RemoveHealthOf restricted to components
// satisfying match — the shard-scoped prune path.
func (d *Directory) removeHealthOfMatching(node string, match func(string) bool) []health.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.removeOfMatching(node, match)
}

// ReplaceHealthOf makes recs the complete health-record set of node —
// the anti-entropy resync broadcast on view changes and resync ticks.
// Exact deltas, like the other two families: a replayed sync of a
// converged (and stable-caused) health set produces no changes.
func (d *Directory) ReplaceHealthOf(node string, recs []health.Record) (added, updated, removed []health.Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.replaceOf(node, recs)
}

// replaceHealthOfMatching is ReplaceHealthOf restricted to components
// satisfying match — the per-shard authoritative sync.
func (d *Directory) replaceHealthOfMatching(node string, recs []health.Record, match func(string) bool) (added, updated, removed []health.Record) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.replaceOfMatching(node, recs, match)
}

// HealthFor returns every node's record of component, sorted by node.
func (d *Directory) HealthFor(component string) []health.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.forKey(component)
}

// HealthOn returns node's health records, sorted by component.
func (d *Directory) HealthOn(node string) []health.Record {
	var out []health.Record
	for _, rec := range d.HealthRecords() {
		if rec.Node == node {
			out = append(out, rec)
		}
	}
	return out
}

// HealthRecords returns every health record, sorted by component then
// node — the replicated cluster-health view the admin plane aggregates.
func (d *Directory) HealthRecords() []health.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healths.all()
}

// Loads computes per-node load from the directory, restricted to the given
// live nodes.
func (d *Directory) Loads(live []string) []NodeLoad {
	liveSet := make(map[string]bool, len(live))
	for _, n := range live {
		liveSet[n] = true
	}
	loads := make(map[string]*NodeLoad)
	for _, n := range d.Nodes() {
		if liveSet[n.Node] {
			loads[n.Node] = &NodeLoad{Node: n.Node, CPUCapacity: n.CPUCapacity, MemCapacity: n.MemCapacity}
		}
	}
	for _, inst := range d.Instances() {
		if l, ok := loads[inst.Node]; ok {
			l.CPUUsed += inst.CPU
			l.MemUsed += inst.Memory
		}
	}
	out := make([]NodeLoad, 0, len(loads))
	for _, n := range live {
		if l, ok := loads[n]; ok {
			out = append(out, *l)
		}
	}
	return out
}
