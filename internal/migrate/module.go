package migrate

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/core"
	"dosgi/internal/gcs"
	"dosgi/internal/health"
	"dosgi/internal/san"
)

// EventType enumerates migration-module events.
type EventType int

// Migration events.
const (
	// EventNodeLost fires when a view change removes a node.
	EventNodeLost EventType = iota + 1
	// EventRedeployed fires when this node restored a failed instance.
	EventRedeployed
	// EventMigratedOut fires when a planned migration left this node.
	EventMigratedOut
	// EventMigratedIn fires when a planned migration arrived here.
	EventMigratedIn
	// EventUnplaceable fires when placement found no node for an instance.
	EventUnplaceable
	// EventRestoreFailed fires when this node was assigned a restore but
	// could not make the instance's bundles available (provisioning fetch
	// or verification failed); the instance stays down until the next
	// view change retries placement.
	EventRestoreFailed
)

func (t EventType) String() string {
	switch t {
	case EventNodeLost:
		return "NODE_LOST"
	case EventRedeployed:
		return "REDEPLOYED"
	case EventMigratedOut:
		return "MIGRATED_OUT"
	case EventMigratedIn:
		return "MIGRATED_IN"
	case EventUnplaceable:
		return "UNPLACEABLE"
	case EventRestoreFailed:
		return "RESTORE_FAILED"
	}
	return "UNKNOWN"
}

// Event reports a migration occurrence.
type Event struct {
	Type     EventType
	Instance core.InstanceID
	From     string
	To       string
	At       time.Duration
	// Err carries the cause of a RESTORE_FAILED event.
	Err error
}

// Wire messages (broadcast with Total ordering so every replica applies
// the same directory mutations in the same order).

type instancePut struct{ Info InstanceInfo }

type instanceRemove struct{ ID core.InstanceID }

type nodeAnnounce struct{ Info NodeInfo }

type migrationAnnounce struct {
	Info InstanceInfo // Node already set to the target
	From string
}

type endpointPut struct{ Info EndpointInfo }

type endpointRemove struct{ Service, Node string }

// endpointSync replaces a node's complete endpoint set: broadcast on every
// view change so withdrawals lost in a partition converge after the heal.
type endpointSync struct {
	Node  string
	Infos []EndpointInfo
}

type artifactPut struct{ Info ArtifactInfo }

type artifactRemove struct{ Digest, Node string }

// artifactSync replaces a node's complete artifact-holding set: the
// anti-entropy resync broadcast on every view change and every resync
// tick so repository advertisements converge after partition healing —
// and, since the deltas are exact, after blips too short to change the
// view.
type artifactSync struct {
	Node  string
	Infos []ArtifactInfo
}

type healthPut struct{ Info health.Record }

type healthRemove struct{ Component, Node string }

// healthSync replaces a node's complete health-record set: the same
// anti-entropy resync the other two families run. Causes are stable
// rule descriptions, so a converged sync compares equal and is silent.
type healthSync struct {
	Node  string
	Infos []health.Record
}

// Config wires a migration module into its node.
type Config struct {
	NodeID  string
	Sched   clock.Scheduler
	Member  *gcs.Member
	Store   *san.Store
	Manager *core.Manager
	// CPUCapacity/MemCapacity are announced to the cluster for placement.
	CPUCapacity int64
	MemCapacity int64
	// Mode selects the shortage policy (default BestEffort).
	Mode PlacementMode
	// CheckpointEvery adds periodic checkpoints on top of the
	// lifecycle-driven ones (0 disables).
	CheckpointEvery time.Duration
	// ResyncEvery is the directory anti-entropy period: the node
	// re-broadcasts its authoritative endpoint AND artifact-holding sets
	// so records lost to a partition blip too short to change the
	// membership view still converge (view changes remain the immediate
	// resync trigger). Replaying an unchanged set fires no hooks in
	// either family, so a converged directory stays silent. 0 means
	// DefaultResyncEvery; negative disables.
	ResyncEvery time.Duration
	// OnRelocate runs after an instance lands on this node so the
	// embedder can rebind its network endpoints (IP takeover / ipvs).
	OnRelocate func(InstanceInfo)
	// EnsureBundles, when set, runs before a restore to make the given
	// bundle install locations available locally — the provisioning
	// subsystem fetches missing artifacts on demand here, so failover to
	// a node that never held a bundle's artifact transparently fetches
	// first. done must be invoked exactly once; a non-nil error aborts
	// the restore.
	EnsureBundles func(locations []string, done func(error))
	// Shards partitions the record engine (endpoints, artifacts, health)
	// into this many rendezvous-hashed shards, each riding its own GCS
	// group from ShardMembers — its own coordinator, epoch log, view and
	// anti-entropy timer. 0 or 1 keeps the single-group layout: records
	// ride Member exactly as before. Instance, node-capacity and
	// migration traffic always stays on Member regardless.
	Shards int
	// ShardMembers are the per-shard GCS members (required when
	// Shards > 1, exactly Shards of them). They usually join per-shard
	// groups under ranked ids (gcs.RankedID) so coordinators spread
	// across nodes; the module maps view members back to plain node ids
	// through gcs.NodeOf. The caller starts and stops them alongside
	// Member; Shutdown stops them after the main member leaves.
	ShardMembers []*gcs.Member
}

// DefaultResyncEvery is the default directory anti-entropy period.
const DefaultResyncEvery = 2 * time.Second

// Errors returned by the module.
var (
	// ErrNotStarted is returned for operations before Start.
	ErrNotStarted = errors.New("migrate: module not started")
	// ErrMigrationInProgress is returned when the instance is already
	// moving.
	ErrMigrationInProgress = errors.New("migrate: migration already in progress")
)

// Module is one node's migration agent.
type Module struct {
	cfg    Config
	dir    *Directory
	router ShardRouter
	// shards partition the record engine. The single-shard layout holds
	// one shard riding cfg.Member (match nil); the sharded layout holds
	// one per ShardMembers entry, each scoped to its rendezvous-hashed
	// key subset. Announce/withdraw calls route by key; subscriber hooks
	// observe the merged exact-delta stream of every shard.
	shards []*dirShard

	mu        sync.Mutex
	started   bool
	migrating map[core.InstanceID]bool
	listeners []func(Event)
	ckptTimer clock.Timer
}

// NewModule builds the module; call Start *before* starting the group
// member (and any shard members) so no view change is missed.
func NewModule(cfg Config) (*Module, error) {
	if cfg.NodeID == "" || cfg.Sched == nil || cfg.Member == nil || cfg.Store == nil || cfg.Manager == nil {
		return nil, errors.New("migrate: incomplete config")
	}
	if cfg.Mode == 0 {
		cfg.Mode = BestEffort
	}
	if cfg.ResyncEvery == 0 {
		cfg.ResyncEvery = DefaultResyncEvery
	}
	if cfg.Shards > 1 && len(cfg.ShardMembers) != cfg.Shards {
		return nil, fmt.Errorf("migrate: %d shards need exactly %d shard members, got %d",
			cfg.Shards, cfg.Shards, len(cfg.ShardMembers))
	}
	m := &Module{
		cfg:       cfg,
		dir:       NewDirectory(),
		router:    NewShardRouter(cfg.Shards),
		migrating: make(map[core.InstanceID]bool),
	}
	if cfg.Shards > 1 {
		m.shards = make([]*dirShard, cfg.Shards)
		for i, sm := range cfg.ShardMembers {
			shard := i
			m.shards[i] = newDirShard(m, i, sm, func(key string) bool {
				return m.router.Shard(key) == shard
			})
		}
	} else {
		m.shards = []*dirShard{newDirShard(m, 0, cfg.Member, nil)}
	}
	return m, nil
}

// ShardCount returns the number of directory shards (1 in the
// single-group layout).
func (m *Module) ShardCount() int { return m.router.Shards() }

// ShardOf returns the shard owning a record key — identical on every
// node, so consumers can reason about which shard group sequences a
// given service, digest or component.
func (m *Module) ShardOf(key string) int { return m.router.Shard(key) }

// Directory returns this node's replica of the cluster directory.
func (m *Module) Directory() *Directory { return m.dir }

// OnEvent subscribes to migration events.
func (m *Module) OnEvent(fn func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

func (m *Module) emit(ev Event) {
	m.mu.Lock()
	listeners := append(make([]func(Event), 0, len(m.listeners)), m.listeners...)
	m.mu.Unlock()
	for _, fn := range listeners {
		fn(ev)
	}
}

// Start hooks the module into the group members and the instance
// manager. Each shard registers its own view/deliver handlers on its
// own member (record handlers register before the instance-level ones,
// preserving the resync-before-placement order of the single-group
// engine) and runs its own anti-entropy timer.
func (m *Module) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return nil
	}
	m.started = true
	m.mu.Unlock()

	for _, s := range m.shards {
		s.member.OnViewChange(s.onView)
		s.member.OnDeliver(s.onDeliver)
	}
	m.cfg.Member.OnViewChange(m.onView)
	m.cfg.Member.OnDeliver(m.onDeliver)
	m.cfg.Manager.OnEvent(m.onInstanceEvent)
	m.mu.Lock()
	if m.cfg.CheckpointEvery > 0 {
		m.ckptTimer = m.cfg.Sched.Every(m.cfg.CheckpointEvery, m.checkpointAll)
	}
	m.mu.Unlock()
	if m.cfg.ResyncEvery > 0 {
		for _, s := range m.shards {
			shard := s
			s.mu.Lock()
			s.resyncTimer = m.cfg.Sched.Every(m.cfg.ResyncEvery, shard.antiEntropy)
			s.mu.Unlock()
		}
	}
	return nil
}

// Stop halts periodic checkpointing and every shard's anti-entropy (the
// group members are stopped separately, usually through Shutdown).
func (m *Module) Stop() {
	m.mu.Lock()
	if m.ckptTimer != nil {
		m.ckptTimer.Cancel()
		m.ckptTimer = nil
	}
	m.started = false
	m.mu.Unlock()
	for _, s := range m.shards {
		s.mu.Lock()
		if s.resyncTimer != nil {
			s.resyncTimer.Cancel()
			s.resyncTimer = nil
		}
		s.mu.Unlock()
	}
}

// CheckpointPath returns the SAN location of an instance's state.
func CheckpointPath(id core.InstanceID) string {
	return san.Join("instances", string(id), "checkpoint")
}

// buildInfo derives the directory record from a live instance.
func (m *Module) buildInfo(inst *core.Instance) InstanceInfo {
	desc := inst.Descriptor()
	return InstanceInfo{
		ID:             desc.ID,
		Node:           m.cfg.NodeID,
		CPU:            desc.Resources.CPUMillicores,
		Memory:         desc.Resources.MemoryBytes,
		Priority:       desc.Resources.Priority,
		CheckpointPath: CheckpointPath(desc.ID),
		Running:        inst.State() == core.InstanceRunning,
	}
}

// broadcast sends a totally-ordered message on the main group, silently
// dropping it when the member is not yet in a view (the first view
// announce re-publishes everything). Record mutations ride the owning
// shard's group instead — see dirShard.broadcast.
func (m *Module) broadcast(body any) {
	_ = m.cfg.Member.Broadcast(body, gcs.Total)
}

// shardFor returns the shard owning a record key.
func (m *Module) shardFor(key string) *dirShard {
	return m.shards[m.router.Shard(key)]
}

// antiEntropy triggers one immediate resync on every shard. Production
// resync runs on the per-shard timers; this is the forced-resync hook
// tests use to race a sync against failure detection.
func (m *Module) antiEntropy() {
	for _, s := range m.shards {
		s.antiEntropy()
	}
}

// AnnounceEndpoint records and broadcasts a remotely invocable service
// exported by this node's host framework (the remote.Exporter hook calls
// it). Addr is the node's remote-services listener, "ip:port".
func (m *Module) AnnounceEndpoint(service, addr string) {
	m.AnnounceEndpointFor(service, addr, "")
}

// AnnounceEndpointFor records and broadcasts a remotely invocable service
// exported by the named virtual instance on this node ("" for host-level
// exports). Re-announcing an existing (service, node) record surfaces as
// an UPDATED endpoint change — a MODIFIED service event — on every node.
func (m *Module) AnnounceEndpointFor(service, addr, instance string) {
	s := m.shardFor(service)
	announceRecord(s, s.eps, EndpointInfo{Service: service, Node: m.cfg.NodeID, Addr: addr, Instance: instance})
}

// WithdrawEndpoint broadcasts that this node's host framework stopped
// exporting service.
func (m *Module) WithdrawEndpoint(service string) {
	m.WithdrawEndpointFor(service, "")
}

// WithdrawEndpointFor withdraws service only when this node's current
// record is owned by instance. Host and instance exports share the
// per-node service namespace (the directory keys records by (service,
// node)); the ownership check keeps a stale withdrawal — say, a stopped
// instance whose export name collides with a live host export — from
// erasing the surviving owner's record cluster-wide.
func (m *Module) WithdrawEndpointFor(service, instance string) {
	s := m.shardFor(service)
	s.mu.Lock()
	info, owned := s.eps.owned[service]
	if !owned || info.Instance != instance {
		s.mu.Unlock()
		return
	}
	withdrawRecordLocked(s, s.eps, service)
	s.mu.Unlock()
}

// AnnounceArtifact records and broadcasts that this node holds a copy of
// the artifact (the provisioning repository calls it after a publish or a
// verified fetch).
func (m *Module) AnnounceArtifact(info ArtifactInfo) {
	info.Node = m.cfg.NodeID
	s := m.shardFor(info.Digest)
	announceRecord(s, s.arts, info)
}

// WithdrawArtifact broadcasts that this node no longer holds the artifact.
func (m *Module) WithdrawArtifact(digest string) {
	s := m.shardFor(digest)
	s.mu.Lock()
	if _, owned := s.arts.owned[digest]; owned {
		withdrawRecordLocked(s, s.arts, digest)
	}
	s.mu.Unlock()
}

// AnnounceHealth records and broadcasts this node's health for one
// component (the health evaluator's transition bridge calls it). The
// node field is stamped here: a node only ever speaks for itself.
func (m *Module) AnnounceHealth(rec health.Record) {
	rec.Node = m.cfg.NodeID
	s := m.shardFor(rec.Component)
	announceRecord(s, s.hlth, rec)
}

// WithdrawHealth broadcasts that this node no longer reports health for
// component (e.g. the watched subsystem was torn down).
func (m *Module) WithdrawHealth(component string) {
	s := m.shardFor(component)
	s.mu.Lock()
	if _, owned := s.hlth.owned[component]; owned {
		withdrawRecordLocked(s, s.hlth, component)
	}
	s.mu.Unlock()
}

// announceRecord records info as locally owned in its shard and
// broadcasts the put on the shard's group. The broadcast submits under
// the shard lock: record broadcasts must sequence in the same order the
// local state mutates, or a concurrent anti-entropy sync whose snapshot
// predates this change could be sequenced after it and briefly erase
// the record cluster-wide (shard mu → member internals is a safe lock
// order; deliveries run with both released). This holds on a real
// clock, not just the single-threaded simulator. Per-shard locks mean
// the ordering is pinned per shard — exactly as strong as the per-key
// guarantee consumers rely on, since a key never changes shards.
func announceRecord[V comparable](s *dirShard, f *recordFamily[V], info V) {
	s.mu.Lock()
	f.owned[f.key(info)] = info
	s.broadcast(f.wirePut(info))
	s.mu.Unlock()
}

// withdrawRecordLocked drops local ownership of key and broadcasts the
// removal on the shard's group, under the shard lock for the same
// submission-order reason as announceRecord. Callers hold s.mu.
func withdrawRecordLocked[V comparable](s *dirShard, f *recordFamily[V], key string) {
	delete(f.owned, key)
	s.broadcast(f.wireRemove(key, s.nodeID))
}

// OnArtifactChange subscribes to replicated artifact-record changes. The
// deltas are exact — a converged anti-entropy resync fires nothing — so
// subscribers (replication duty, provisioning caches) can trust every
// delivered change to be a real one instead of re-scanning the whole
// index on every hook.
func (m *Module) OnArtifactChange(fn func(ArtifactChange)) {
	for _, s := range m.shards {
		s.mu.Lock()
		s.arts.hooks = append(s.arts.hooks, fn)
		s.mu.Unlock()
	}
}

// OnEndpointChange subscribes to replicated endpoint-record changes. The
// deltas are exact: resyncs replaying unchanged records fire nothing, so
// a subscriber bridging these changes onto the remote event stream never
// emits duplicates after a partition heals.
func (m *Module) OnEndpointChange(fn func(EndpointChange)) {
	for _, s := range m.shards {
		s.mu.Lock()
		s.eps.hooks = append(s.eps.hooks, fn)
		s.mu.Unlock()
	}
}

// OnHealthChange subscribes to replicated health-record changes. The
// deltas are exact — steady-state health and converged resyncs fire
// nothing — so subscribers (alert bridges, autonomic rules) can treat
// every delivered change as a real state transition or arrival.
func (m *Module) OnHealthChange(fn func(HealthChange)) {
	for _, s := range m.shards {
		s.mu.Lock()
		s.hlth.hooks = append(s.hlth.hooks, fn)
		s.mu.Unlock()
	}
}

// EndpointStats returns the endpoint family's directory counters,
// summed across shards.
func (m *Module) EndpointStats() FamilyStats {
	return sumStats(m.shards, func(s *dirShard) *recordFamily[EndpointInfo] { return s.eps })
}

// ArtifactStats returns the artifact family's directory counters,
// summed across shards.
func (m *Module) ArtifactStats() FamilyStats {
	return sumStats(m.shards, func(s *dirShard) *recordFamily[ArtifactInfo] { return s.arts })
}

// HealthStats returns the health family's directory counters, summed
// across shards.
func (m *Module) HealthStats() FamilyStats {
	return sumStats(m.shards, func(s *dirShard) *recordFamily[health.Record] { return s.hlth })
}

// ShardStats returns the per-shard family counters plus each shard
// group's current membership size, in shard order.
func (m *Module) ShardStats() []ShardStats {
	out := make([]ShardStats, len(m.shards))
	for i, s := range m.shards {
		members := len(s.member.View().Members)
		s.mu.Lock()
		out[i] = ShardStats{
			Shard:     s.id,
			Members:   members,
			Endpoints: s.eps.stats,
			Artifacts: s.arts.stats,
			Health:    s.hlth.stats,
		}
		s.mu.Unlock()
	}
	return out
}

// sumStats aggregates one family's counters over every shard.
func sumStats[V comparable](shards []*dirShard, fam func(*dirShard) *recordFamily[V]) FamilyStats {
	var sum FamilyStats
	for _, s := range shards {
		s.mu.Lock()
		st := fam(s).stats
		s.mu.Unlock()
		sum.Puts += st.Puts
		sum.Removes += st.Removes
		sum.Syncs += st.Syncs
		sum.Added += st.Added
		sum.Updated += st.Updated
		sum.Removed += st.Removed
		sum.SilentSyncs += st.SilentSyncs
		sum.Pruned += st.Pruned
		sum.Filtered += st.Filtered
	}
	return sum
}

// notifyRecords fans exact deltas out to the family's subscribers,
// counting them. Hooks run with no locks held.
func notifyRecords[V comparable](s *dirShard, f *recordFamily[V], chs ...Change[V]) {
	if len(chs) == 0 {
		return
	}
	s.mu.Lock()
	for _, ch := range chs {
		switch ch.Type {
		case Added:
			f.stats.Added++
		case Updated:
			f.stats.Updated++
		case Removed:
			f.stats.Removed++
		}
	}
	hooks := append(make([]func(Change[V]), 0, len(f.hooks)), f.hooks...)
	s.mu.Unlock()
	for _, fn := range hooks {
		for _, ch := range chs {
			fn(ch)
		}
	}
}

// recordHolderLive reports whether a replicated mutation's holder is
// still a member of the shard's current view. Mutations from departed
// holders are dropped: a message sequenced before the holder's
// departure but applied after it — the view-install flush path — would
// otherwise resurrect dead records on exactly the replicas that
// buffered it, making dead-holder pruning nondeterministic under
// concurrent view changes. By apply time every member has the new view
// installed, so every member drops (or keeps) the same mutations. The
// check runs against the OWNING shard's view — shard views change
// independently, and only the shard sequencing a key decides its fate.
func recordHolderLive[V comparable](s *dirShard, f *recordFamily[V], holder string) bool {
	if s.holderLive(holder) {
		return true
	}
	s.mu.Lock()
	f.stats.Filtered++
	s.mu.Unlock()
	return false
}

// applyRecordPut applies a replicated incremental put. A re-announcement
// of an existing record (even with identical content) is deliberately an
// Updated change: it is how a holder signals a MODIFIED service to
// remote listeners.
func applyRecordPut[V comparable](s *dirShard, f *recordFamily[V], holder string, info V, put func(V) bool) {
	if !recordHolderLive(s, f, holder) {
		return
	}
	s.mu.Lock()
	f.stats.Puts++
	s.mu.Unlock()
	kind := Added
	if put(info) {
		kind = Updated
	}
	notifyRecords(s, f, Change[V]{Type: kind, Info: info})
}

// applyRecordRemove applies a replicated incremental removal.
func applyRecordRemove[V comparable](s *dirShard, f *recordFamily[V], holder, key string, remove func(key, holder string) (V, bool)) {
	if !recordHolderLive(s, f, holder) {
		return
	}
	s.mu.Lock()
	f.stats.Removes++
	s.mu.Unlock()
	if info, ok := remove(key, holder); ok {
		notifyRecords(s, f, Change[V]{Type: Removed, Info: info})
	}
}

// applyRecordSync applies a replicated authoritative per-holder sync,
// emitting only the exact deltas. A converged replay is silent.
func applyRecordSync[V comparable](s *dirShard, f *recordFamily[V], holder string, infos []V, replace func(string, []V) (added, updated, removed []V)) {
	if !recordHolderLive(s, f, holder) {
		return
	}
	added, updated, removed := replace(holder, infos)
	s.mu.Lock()
	f.stats.Syncs++
	if len(added)+len(updated)+len(removed) == 0 {
		f.stats.SilentSyncs++
	}
	s.mu.Unlock()
	notifyRecords(s, f, changes(Added, added)...)
	notifyRecords(s, f, changes(Updated, updated)...)
	notifyRecords(s, f, changes(Removed, removed)...)
}

// pruneDeadHolders removes every record of this family whose holder left
// the shard's view, notifying exact Removed deltas. Every replica prunes
// the same records from the same view in the same (sorted) holder order,
// so directories converge without a broadcast. removeOf is shard-scoped:
// only keys the shard owns are touched, so one shard's view change never
// disturbs records sequenced by another shard's group.
func pruneDeadHolders[V comparable](s *dirShard, f *recordFamily[V], holderOf func(V) string,
	all func() []V, removeOf func(string) []V, memberSet map[string]bool) {
	dead := make(map[string]bool)
	for _, v := range all() {
		if !memberSet[holderOf(v)] {
			dead[holderOf(v)] = true
		}
	}
	holders := make([]string, 0, len(dead))
	for node := range dead {
		holders = append(holders, node)
	}
	sort.Strings(holders)
	for _, node := range holders {
		removed := removeOf(node)
		s.mu.Lock()
		f.stats.Pruned += int64(len(removed))
		s.mu.Unlock()
		notifyRecords(s, f, changes(Removed, removed)...)
	}
}

// onView reacts to main-group membership changes: (re-)announcement and
// crash redeployment. Announcing on every view keeps directories
// convergent across the singleton-view merges that happen at cluster
// startup and after healed partitions. Record-family resync and pruning
// run per shard on each shard's own view changes (dirShard.onView); in
// the single-shard layout that handler shares this member and fires on
// the same views.
func (m *Module) onView(v gcs.View) {
	m.broadcast(nodeAnnounce{Info: NodeInfo{
		Node:        m.cfg.NodeID,
		CPUCapacity: m.cfg.CPUCapacity,
		MemCapacity: m.cfg.MemCapacity,
	}})
	for _, inst := range m.cfg.Manager.List() {
		m.mu.Lock()
		moving := m.migrating[inst.ID()]
		m.mu.Unlock()
		if moving {
			continue
		}
		m.broadcast(instancePut{Info: m.buildInfo(inst)})
		m.writeCheckpoint(inst.ID(), nil)
	}

	// Which hosting nodes disappeared?
	memberSet := make(map[string]bool, len(v.Members))
	for _, id := range v.Members {
		memberSet[id] = true
	}
	lostNodes := make(map[string]bool)
	var failed []InstanceInfo
	for _, info := range m.dir.Instances() {
		if info.Node != "" && !memberSet[info.Node] {
			lostNodes[info.Node] = true
			failed = append(failed, info)
		}
	}
	if len(failed) == 0 {
		return
	}
	now := m.cfg.Sched.Now()
	for node := range lostNodes {
		m.emit(Event{Type: EventNodeLost, From: node, At: now})
	}

	// Decentralized placement: every survivor computes the same assignment
	// from the same directory and view.
	loads := m.dir.Loads(v.Members)
	assigned, unplaced := Place(failed, loads, m.cfg.Mode)
	for _, info := range failed {
		if target, ok := assigned[info.ID]; ok {
			moved := info
			moved.Node = target
			m.dir.PutInstance(moved)
			if target == m.cfg.NodeID {
				m.restoreFromStore(moved, EventRedeployed, info.Node)
			}
		}
	}
	for _, id := range unplaced {
		info, _ := m.dir.Instance(id)
		info.Node = ""
		info.Running = false
		m.dir.PutInstance(info)
		m.emit(Event{Type: EventUnplaceable, Instance: id, At: now})
	}
}

// restoreFromStore pulls the checkpoint from the SAN and revives the
// instance locally.
func (m *Module) restoreFromStore(info InstanceInfo, kind EventType, from string) {
	m.cfg.Store.GetAsync(info.CheckpointPath, func(data []byte, err error) {
		if err != nil {
			return
		}
		chk, err := core.DecodeCheckpoint(data)
		if err != nil {
			return
		}
		revive := func() {
			if _, exists := m.cfg.Manager.Get(info.ID); exists {
				return
			}
			start := chk.Running || info.Running
			if _, err := m.cfg.Manager.RestoreInstance(chk, start); err != nil {
				return
			}
			if m.cfg.OnRelocate != nil {
				landed := info
				landed.Node = m.cfg.NodeID
				m.cfg.OnRelocate(landed)
			}
			m.emit(Event{Type: kind, Instance: info.ID, From: from, To: m.cfg.NodeID, At: m.cfg.Sched.Now()})
		}
		if m.cfg.EnsureBundles == nil {
			revive()
			return
		}
		// Fetch missing bundle artifacts before the restore: the union of
		// the descriptor's bundle list and the snapshot's installed set
		// covers bundles installed after creation.
		m.cfg.EnsureBundles(checkpointLocations(chk), func(err error) {
			if err != nil {
				m.emit(Event{
					Type: EventRestoreFailed, Instance: info.ID,
					From: from, To: m.cfg.NodeID,
					At: m.cfg.Sched.Now(), Err: err,
				})
				return
			}
			revive()
		})
	})
}

// checkpointLocations returns the bundle install locations a checkpoint
// needs, deduplicated, in first-seen order.
func checkpointLocations(chk *core.Checkpoint) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(loc string) {
		if loc != "" && !seen[loc] {
			seen[loc] = true
			out = append(out, loc)
		}
	}
	for _, b := range chk.Descriptor.Bundles {
		add(b.Location)
	}
	if chk.Snapshot != nil {
		for _, b := range chk.Snapshot.Bundles {
			add(b.Location)
		}
	}
	return out
}

// onDeliver applies replicated instance/node updates and migration
// handoffs from the main group. Record-family mutations arrive on their
// owning shard's group and are applied by dirShard.onDeliver (which, in
// the single-shard layout, is a second handler on this same member).
func (m *Module) onDeliver(msg gcs.Message) {
	switch body := msg.Body.(type) {
	case nodeAnnounce:
		m.dir.PutNode(body.Info)
	case instancePut:
		m.dir.PutInstance(body.Info)
	case instanceRemove:
		m.dir.RemoveInstance(body.ID)
	case migrationAnnounce:
		m.dir.PutInstance(body.Info)
		if body.From == m.cfg.NodeID {
			// Self-delivery: the handoff is sequenced and fanned out to
			// every member; the outbound migration is complete.
			m.clearMigrating(body.Info.ID)
			m.emit(Event{
				Type:     EventMigratedOut,
				Instance: body.Info.ID,
				From:     m.cfg.NodeID,
				To:       body.Info.Node,
				At:       m.cfg.Sched.Now(),
			})
			return
		}
		if body.Info.Node == m.cfg.NodeID {
			m.restoreFromStore(body.Info, EventMigratedIn, body.From)
		}
	}
}

// onInstanceEvent mirrors local lifecycle changes into the replicated
// directory and the SAN.
func (m *Module) onInstanceEvent(ev core.Event) {
	id := ev.Instance.ID()
	m.mu.Lock()
	moving := m.migrating[id]
	m.mu.Unlock()
	if moving {
		return // handoff messages carry the truth during migration
	}
	switch ev.Type {
	case core.EventCreated, core.EventStarted, core.EventStopped, core.EventRestored:
		m.broadcast(instancePut{Info: m.buildInfo(ev.Instance)})
		m.writeCheckpoint(id, nil)
	case core.EventDestroyed:
		m.broadcast(instanceRemove{ID: id})
	}
}

// writeCheckpoint persists an instance's current state to the SAN.
func (m *Module) writeCheckpoint(id core.InstanceID, done func()) {
	chk, err := m.cfg.Manager.Checkpoint(id)
	if err != nil {
		if done != nil {
			done()
		}
		return
	}
	data, err := chk.Encode()
	if err != nil {
		if done != nil {
			done()
		}
		return
	}
	m.cfg.Store.PutAsync(CheckpointPath(id), data, func(int64) {
		if done != nil {
			done()
		}
	})
}

// checkpointAll persists every local instance (periodic timer).
func (m *Module) checkpointAll() {
	for _, inst := range m.cfg.Manager.List() {
		m.writeCheckpoint(inst.ID(), nil)
	}
}

// Migrate performs a planned stop-and-copy migration of a local instance
// to target: checkpoint → SAN → local destroy → totally-ordered handoff →
// target restore. The call is asynchronous; completion surfaces as
// MigratedOut here and MigratedIn on the target.
func (m *Module) Migrate(id core.InstanceID, target string) error {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return ErrNotStarted
	}
	if m.migrating[id] {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrMigrationInProgress, id)
	}
	m.migrating[id] = true
	m.mu.Unlock()

	inst, ok := m.cfg.Manager.Get(id)
	if !ok {
		m.clearMigrating(id)
		return fmt.Errorf("%w: %s", core.ErrInstanceNotFound, id)
	}
	info := m.buildInfo(inst)
	chk, err := m.cfg.Manager.Checkpoint(id)
	if err != nil {
		m.clearMigrating(id)
		return err
	}
	data, err := chk.Encode()
	if err != nil {
		m.clearMigrating(id)
		return err
	}
	m.cfg.Store.PutAsync(info.CheckpointPath, data, func(int64) {
		// Downtime begins: the instance stops serving here. MigratedOut is
		// emitted on self-delivery of the handoff broadcast, which proves
		// the announcement was sequenced before any group teardown.
		_ = m.cfg.Manager.Destroy(id)
		handoff := info
		handoff.Node = target
		m.broadcast(migrationAnnounce{Info: handoff, From: m.cfg.NodeID})
	})
	return nil
}

func (m *Module) clearMigrating(id core.InstanceID) {
	m.mu.Lock()
	delete(m.migrating, id)
	m.mu.Unlock()
}

// Shutdown gracefully drains the node: every local instance migrates to
// the least-loaded other member, then the group member leaves cleanly, so
// the remaining nodes never see these instances as failed. onDone fires
// after the member has left.
func (m *Module) Shutdown(onDone func()) error {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return ErrNotStarted
	}
	m.mu.Unlock()

	view := m.cfg.Member.View()
	var others []string
	for _, id := range view.Members {
		if id != m.cfg.NodeID {
			others = append(others, id)
		}
	}
	local := m.cfg.Manager.List()
	finish := func() {
		_ = m.cfg.Member.Stop()
		// Shard members leave after the main member: the drain's handoff
		// broadcasts ride the main group, while record withdrawals have
		// already converged through the shard groups' graceful leaves.
		for _, sm := range m.cfg.ShardMembers {
			_ = sm.Stop()
		}
		m.Stop()
		if onDone != nil {
			onDone()
		}
	}
	if len(local) == 0 || len(others) == 0 {
		// Nothing to drain (or nowhere to drain to — instances stay down
		// but their checkpoints survive on the SAN).
		finish()
		return nil
	}

	remaining := len(local)
	var mu sync.Mutex
	m.OnEvent(func(ev Event) {
		if ev.Type != EventMigratedOut {
			return
		}
		mu.Lock()
		remaining--
		last := remaining == 0
		mu.Unlock()
		if last {
			finish()
		}
	})
	loads := m.dir.Loads(others)
	for _, inst := range local {
		target := LeastLoaded(loads)
		if target == "" {
			target = others[0]
		}
		// Track the drain target's growing load locally for sensible
		// spreading.
		for i := range loads {
			if loads[i].Node == target {
				loads[i].CPUUsed += inst.Descriptor().Resources.CPUMillicores
				loads[i].MemUsed += inst.Descriptor().Resources.MemoryBytes
			}
		}
		if err := m.Migrate(inst.ID(), target); err != nil {
			mu.Lock()
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				finish()
			}
		}
	}
	return nil
}
