package migrate

import (
	"sort"

	"dosgi/internal/core"
)

// NodeLoad is placement's view of one candidate node.
type NodeLoad struct {
	Node        string
	CPUCapacity int64
	MemCapacity int64
	CPUUsed     int64
	MemUsed     int64
}

// cpuFraction returns the relative CPU load (1.0 = full).
func (n NodeLoad) cpuFraction() float64 {
	if n.CPUCapacity <= 0 {
		return 1.0
	}
	return float64(n.CPUUsed) / float64(n.CPUCapacity)
}

func (n NodeLoad) fits(inst InstanceInfo) bool {
	if n.CPUCapacity > 0 && n.CPUUsed+inst.CPU > n.CPUCapacity {
		return false
	}
	if n.MemCapacity > 0 && n.MemUsed+inst.Memory > n.MemCapacity {
		return false
	}
	return true
}

// PlacementMode selects what happens when no node has spare capacity.
type PlacementMode int

// Placement modes (the "how much to degrade" policies of §3.2).
const (
	// BestEffort always places every instance, overloading nodes if
	// needed — maximum availability, degraded performance.
	BestEffort PlacementMode = iota + 1
	// Strict refuses to place instances that do not fit — the
	// "refusing to accept more virtual instances past a given threshold"
	// policy; refused instances stay down.
	Strict
)

// Place deterministically assigns instances to nodes. Every replica that
// calls it with identical inputs (guaranteed by the totally-ordered
// directory and the agreed view) computes identical assignments, which is
// what makes the paper's decentralized redeployment coordinator-free.
//
// Instances are placed in (priority desc, CPU desc, id asc) order onto the
// least-loaded fitting node; under Strict, instances that fit nowhere are
// returned as unplaced.
func Place(instances []InstanceInfo, nodes []NodeLoad, mode PlacementMode) (map[core.InstanceID]string, []core.InstanceID) {
	assigned := make(map[core.InstanceID]string, len(instances))
	var unplaced []core.InstanceID
	if len(nodes) == 0 {
		for _, inst := range instances {
			unplaced = append(unplaced, inst.ID)
		}
		sort.Slice(unplaced, func(i, j int) bool { return unplaced[i] < unplaced[j] })
		return assigned, unplaced
	}

	order := make([]InstanceInfo, len(instances))
	copy(order, instances)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if a.CPU != b.CPU {
			return a.CPU > b.CPU
		}
		return a.ID < b.ID
	})

	loads := make([]NodeLoad, len(nodes))
	copy(loads, nodes)
	sort.Slice(loads, func(i, j int) bool { return loads[i].Node < loads[j].Node })

	for _, inst := range order {
		best := -1
		for i := range loads {
			if mode == Strict && !loads[i].fits(inst) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			if loads[i].cpuFraction() < loads[best].cpuFraction() {
				best = i
			}
		}
		if best < 0 {
			unplaced = append(unplaced, inst.ID)
			continue
		}
		assigned[inst.ID] = loads[best].Node
		loads[best].CPUUsed += inst.CPU
		loads[best].MemUsed += inst.Memory
	}
	sort.Slice(unplaced, func(i, j int) bool { return unplaced[i] < unplaced[j] })
	return assigned, unplaced
}

// LeastLoaded returns the node with the lowest relative CPU load (ties by
// id), or "" when nodes is empty.
func LeastLoaded(nodes []NodeLoad) string {
	best := -1
	for i := range nodes {
		if best < 0 || nodes[i].cpuFraction() < nodes[best].cpuFraction() ||
			(nodes[i].cpuFraction() == nodes[best].cpuFraction() && nodes[i].Node < nodes[best].Node) {
			best = i
		}
	}
	if best < 0 {
		return ""
	}
	return nodes[best].Node
}
