package migrate

import (
	"fmt"
	"testing"
	"time"

	"dosgi/internal/core"
	"dosgi/internal/gcs"
	"dosgi/internal/module"
	"dosgi/internal/netsim"
	"dosgi/internal/san"
	"dosgi/internal/sim"
)

// testNode bundles everything one node runs in these tests.
type testNode struct {
	id           string
	host         *module.Framework
	mgr          *core.Manager
	member       *gcs.Member
	shardMembers []*gcs.Member
	mod          *Module
	events       []Event
}

type testCluster struct {
	t         *testing.T
	eng       *sim.Engine
	net       *netsim.Network
	store     *san.Store
	gdir      *gcs.Directory
	shardDirs []*gcs.Directory
	defs      *module.DefinitionRegistry
	shards    int
	nodes     map[string]*testNode
}

func newTestCluster(t *testing.T, n int) *testCluster {
	return newTestClusterSeed(t, n, 1)
}

func newTestClusterSeed(t *testing.T, n int, seed int64) *testCluster {
	return newShardedTestClusterSeed(t, n, 1, seed)
}

// newShardedTestClusterSeed builds a cluster whose replicated directory
// runs over `shards` rendezvous-hashed groups (1 = the classic
// single-group layout).
func newShardedTestClusterSeed(t *testing.T, n, shards int, seed int64) *testCluster {
	t.Helper()
	eng := sim.New(seed)
	tc := &testCluster{
		t:      t,
		eng:    eng,
		net:    netsim.NewNetwork(eng, netsim.WithLatency(time.Millisecond)),
		store:  san.NewStore(eng),
		gdir:   gcs.NewDirectory(),
		defs:   module.NewDefinitionRegistry(),
		shards: shards,
		nodes:  make(map[string]*testNode),
	}
	for s := 0; s < shards; s++ {
		tc.shardDirs = append(tc.shardDirs, gcs.NewDirectory())
	}
	tc.defs.MustAdd("loc:tenant-app", &module.Definition{
		ManifestText: "Bundle-SymbolicName: com.tenant.app\nBundle-Version: 1.0.0\n",
		Classes:      map[string]any{"com.tenant.app.Main": "main"},
	})
	for i := 0; i < n; i++ {
		tc.addNode(fmt.Sprintf("node%02d", i))
	}
	return tc
}

func (tc *testCluster) addNode(id string) *testNode {
	tc.t.Helper()
	nic := tc.net.AttachNode(id)
	ip := netsim.IP("ip-" + id)
	if err := tc.net.AssignIP(ip, id); err != nil {
		tc.t.Fatal(err)
	}
	host := module.New(module.WithName(id), module.WithDefinitions(tc.defs))
	if err := host.Start(); err != nil {
		tc.t.Fatal(err)
	}
	mgr := core.NewManager(host, core.Hooks{})
	member, err := gcs.NewMember(tc.eng, gcs.Config{
		NodeID:    id,
		Addr:      netsim.Addr{IP: ip, Port: 7000},
		NIC:       nic,
		Directory: tc.gdir,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	node := &testNode{id: id, host: host, mgr: mgr, member: member}
	cfg := Config{
		NodeID:      id,
		Sched:       tc.eng,
		Member:      member,
		Store:       tc.store,
		Manager:     mgr,
		CPUCapacity: 2000,
		MemCapacity: 4 << 30,
	}
	if tc.shards > 1 {
		for s := 0; s < tc.shards; s++ {
			sm, err := gcs.NewMember(tc.eng, gcs.Config{
				NodeID:    gcs.RankedID(fmt.Sprintf("shard-%02d", s), id),
				Addr:      netsim.Addr{IP: ip, Port: uint16(7001 + s)},
				NIC:       nic,
				Directory: tc.shardDirs[s],
			})
			if err != nil {
				tc.t.Fatal(err)
			}
			node.shardMembers = append(node.shardMembers, sm)
		}
		cfg.Shards = tc.shards
		cfg.ShardMembers = node.shardMembers
	}
	mod, err := NewModule(cfg)
	if err != nil {
		tc.t.Fatal(err)
	}
	node.mod = mod
	mod.OnEvent(func(ev Event) { node.events = append(node.events, ev) })
	if err := mod.Start(); err != nil {
		tc.t.Fatal(err)
	}
	if err := member.Start(); err != nil {
		tc.t.Fatal(err)
	}
	for _, sm := range node.shardMembers {
		if err := sm.Start(); err != nil {
			tc.t.Fatal(err)
		}
	}
	tc.nodes[id] = node
	return node
}

func (tc *testCluster) settle() { tc.eng.RunFor(2 * time.Second) }

func (tc *testCluster) deploy(nodeID string, id core.InstanceID) {
	tc.t.Helper()
	n := tc.nodes[nodeID]
	desc := core.Descriptor{
		ID:       id,
		Customer: "acme",
		Bundles:  []core.BundleSpec{{Location: "loc:tenant-app", Start: true}},
		Resources: core.ResourceSpec{
			CPUMillicores: 500, MemoryBytes: 64 << 20, Priority: 1,
		},
	}
	if _, err := n.mgr.Create(desc); err != nil {
		tc.t.Fatal(err)
	}
	if err := n.mgr.Start(id); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testCluster) crash(nodeID string) {
	n := tc.nodes[nodeID]
	n.member.Crash()
	for _, sm := range n.shardMembers {
		sm.Crash()
	}
	if nic, ok := tc.net.NIC(nodeID); ok {
		nic.SetUp(false)
	}
}

func countEvents(events []Event, kind EventType) int {
	n := 0
	for _, ev := range events {
		if ev.Type == kind {
			n++
		}
	}
	return n
}

func TestDirectoryReplication(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()
	tc.deploy("node01", "tenant-a")
	tc.settle()

	for id, n := range tc.nodes {
		info, ok := n.mod.Directory().Instance("tenant-a")
		if !ok {
			t.Fatalf("%s has no record of tenant-a", id)
		}
		if info.Node != "node01" || !info.Running {
			t.Fatalf("%s record = %+v", id, info)
		}
		nodes := n.mod.Directory().Nodes()
		if len(nodes) != 3 {
			t.Fatalf("%s sees %d nodes", id, len(nodes))
		}
	}
	// Checkpoint landed on the SAN.
	if _, err := tc.store.Get(CheckpointPath("tenant-a")); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
}

func TestCrashRedeployment(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()
	tc.deploy("node01", "tenant-a")
	tc.deploy("node01", "tenant-b")
	tc.settle()

	// Put state into tenant-a's bundle and wait for a checkpoint.
	instA, _ := tc.nodes["node01"].mgr.Get("tenant-a")
	b, _ := instA.Virtual().Framework().GetBundleByLocation("loc:tenant-app")
	if err := b.DataPut("state", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	// Stop+start to trigger a fresh lifecycle checkpoint carrying the data.
	if err := tc.nodes["node01"].mgr.Stop("tenant-a"); err != nil {
		t.Fatal(err)
	}
	if err := tc.nodes["node01"].mgr.Start("tenant-a"); err != nil {
		t.Fatal(err)
	}
	tc.settle()

	tc.crash("node01")
	tc.eng.RunFor(3 * time.Second)

	// Both instances must be running somewhere among the survivors.
	located := map[core.InstanceID]string{}
	for _, survivor := range []string{"node00", "node02"} {
		for _, inst := range tc.nodes[survivor].mgr.List() {
			if inst.State() == core.InstanceRunning {
				located[inst.ID()] = survivor
			}
		}
	}
	if len(located) != 2 {
		t.Fatalf("redeployed instances = %v", located)
	}
	// Directory agrees on the survivors.
	for _, survivor := range []string{"node00", "node02"} {
		for id, node := range located {
			info, ok := tc.nodes[survivor].mod.Directory().Instance(id)
			if !ok || info.Node != node {
				t.Fatalf("%s directory: %v -> %+v (want %s)", survivor, id, info, node)
			}
		}
	}
	// State survived via the SAN checkpoint.
	home := located["tenant-a"]
	instA2, _ := tc.nodes[home].mgr.Get("tenant-a")
	b2, ok := instA2.Virtual().Framework().GetBundleByLocation("loc:tenant-app")
	if !ok {
		t.Fatal("tenant bundle missing after redeploy")
	}
	data, ok := b2.DataGet("state")
	if !ok || string(data) != "precious" {
		t.Fatalf("bundle state lost: %q ok=%v", data, ok)
	}
	// Exactly one survivor redeployed each instance (no duplicates).
	for id := range located {
		holders := 0
		for _, survivor := range []string{"node00", "node02"} {
			if _, ok := tc.nodes[survivor].mgr.Get(id); ok {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("instance %s present on %d nodes", id, holders)
		}
	}
	// Node-lost events fired.
	if countEvents(tc.nodes["node00"].events, EventNodeLost) == 0 {
		t.Fatal("no NODE_LOST event on survivor")
	}
}

func TestPlannedMigration(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.settle()
	tc.deploy("node00", "tenant-a")
	tc.settle()

	inst, _ := tc.nodes["node00"].mgr.Get("tenant-a")
	b, _ := inst.Virtual().Framework().GetBundleByLocation("loc:tenant-app")
	if err := b.DataPut("state", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	if err := tc.nodes["node00"].mod.Migrate("tenant-a", "node01"); err != nil {
		t.Fatal(err)
	}
	tc.settle()

	if _, still := tc.nodes["node00"].mgr.Get("tenant-a"); still {
		t.Fatal("instance still on source after migration")
	}
	inst2, ok := tc.nodes["node01"].mgr.Get("tenant-a")
	if !ok || inst2.State() != core.InstanceRunning {
		t.Fatalf("instance on target: ok=%v", ok)
	}
	b2, _ := inst2.Virtual().Framework().GetBundleByLocation("loc:tenant-app")
	data, _ := b2.DataGet("state")
	if string(data) != "v1" {
		t.Fatalf("state after migration = %q", data)
	}
	// Events on both sides.
	if countEvents(tc.nodes["node00"].events, EventMigratedOut) != 1 {
		t.Fatalf("source events = %v", tc.nodes["node00"].events)
	}
	if countEvents(tc.nodes["node01"].events, EventMigratedIn) != 1 {
		t.Fatalf("target events = %v", tc.nodes["node01"].events)
	}
	// Directory converged.
	info, _ := tc.nodes["node00"].mod.Directory().Instance("tenant-a")
	if info.Node != "node01" {
		t.Fatalf("directory node = %s", info.Node)
	}
}

func TestMigrateErrors(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.settle()
	if err := tc.nodes["node00"].mod.Migrate("ghost", "node01"); err == nil {
		t.Fatal("migrating unknown instance succeeded")
	}
	tc.deploy("node00", "tenant-a")
	tc.settle()
	if err := tc.nodes["node00"].mod.Migrate("tenant-a", "node01"); err != nil {
		t.Fatal(err)
	}
	// Second migration while the first is in flight fails.
	if err := tc.nodes["node00"].mod.Migrate("tenant-a", "node01"); err == nil {
		t.Fatal("concurrent migration accepted")
	}
}

func TestGracefulShutdownDrainsInstances(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()
	tc.deploy("node00", "tenant-a")
	tc.deploy("node00", "tenant-b")
	tc.settle()

	done := false
	if err := tc.nodes["node00"].mod.Shutdown(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	tc.eng.RunFor(3 * time.Second)
	if !done {
		t.Fatal("shutdown callback never fired")
	}
	// Instances drained to the survivors, spread across them.
	homes := map[string]int{}
	for _, survivor := range []string{"node01", "node02"} {
		for _, inst := range tc.nodes[survivor].mgr.List() {
			if inst.State() != core.InstanceRunning {
				t.Fatalf("drained instance %s not running", inst.ID())
			}
			homes[survivor]++
		}
	}
	if homes["node01"]+homes["node02"] != 2 {
		t.Fatalf("homes = %v", homes)
	}
	if homes["node01"] != 1 || homes["node02"] != 1 {
		t.Fatalf("drain did not spread: %v", homes)
	}
	// The survivors never saw node00 as failed (no NODE_LOST).
	for _, survivor := range []string{"node01", "node02"} {
		if countEvents(tc.nodes[survivor].events, EventNodeLost) != 0 {
			t.Fatalf("%s saw NODE_LOST on graceful shutdown", survivor)
		}
	}
}

func TestStrictModeUnplaceable(t *testing.T) {
	// Two tiny nodes; the failed node's big instance cannot fit.
	eng := sim.New(1)
	tc := &testCluster{
		t:     t,
		eng:   eng,
		net:   netsim.NewNetwork(eng, netsim.WithLatency(time.Millisecond)),
		store: san.NewStore(eng),
		gdir:  gcs.NewDirectory(),
		defs:  module.NewDefinitionRegistry(),
		nodes: make(map[string]*testNode),
	}
	tc.defs.MustAdd("loc:tenant-app", &module.Definition{
		ManifestText: "Bundle-SymbolicName: com.tenant.app\nBundle-Version: 1.0.0\n",
	})
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("node%02d", i)
		nic := tc.net.AttachNode(id)
		_ = nic
		ip := netsim.IP("ip-" + id)
		if err := tc.net.AssignIP(ip, id); err != nil {
			t.Fatal(err)
		}
		host := module.New(module.WithName(id), module.WithDefinitions(tc.defs))
		if err := host.Start(); err != nil {
			t.Fatal(err)
		}
		mgr := core.NewManager(host, core.Hooks{})
		member, err := gcs.NewMember(eng, gcs.Config{
			NodeID: id, Addr: netsim.Addr{IP: ip, Port: 7000},
			NIC: mustNIC(t, tc.net, id), Directory: tc.gdir,
		})
		if err != nil {
			t.Fatal(err)
		}
		node := &testNode{id: id, host: host, mgr: mgr, member: member}
		mod, err := NewModule(Config{
			NodeID: id, Sched: eng, Member: member, Store: tc.store, Manager: mgr,
			CPUCapacity: 600, MemCapacity: 4 << 30,
			Mode: Strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.mod = mod
		mod.OnEvent(func(ev Event) { node.events = append(node.events, ev) })
		if err := mod.Start(); err != nil {
			t.Fatal(err)
		}
		if err := member.Start(); err != nil {
			t.Fatal(err)
		}
		tc.nodes[id] = node
	}
	tc.settle()
	// 500mc tenant on node01; node00 has 600 capacity but placement input
	// counts existing load. Deploy another 500mc instance on node00 so the
	// failed one cannot fit.
	tc.deploy("node00", "resident")
	tc.deploy("node01", "vagrant")
	tc.settle()

	tc.crash("node01")
	tc.eng.RunFor(3 * time.Second)

	if _, ok := tc.nodes["node00"].mgr.Get("vagrant"); ok {
		t.Fatal("strict mode placed an instance beyond capacity")
	}
	if countEvents(tc.nodes["node00"].events, EventUnplaceable) != 1 {
		t.Fatalf("events = %v", tc.nodes["node00"].events)
	}
	info, _ := tc.nodes["node00"].mod.Directory().Instance("vagrant")
	if info.Node != "" || info.Running {
		t.Fatalf("unplaceable record = %+v", info)
	}
}

func mustNIC(t *testing.T, net *netsim.Network, id string) *netsim.NIC {
	t.Helper()
	nic, ok := net.NIC(id)
	if !ok {
		t.Fatalf("nic %s missing", id)
	}
	return nic
}

func TestRedeployLatency(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()
	tc.deploy("node01", "tenant-a")
	tc.settle()

	crashAt := tc.eng.Now()
	tc.crash("node01")
	var redeployedAt time.Duration
	for _, survivor := range []string{"node00", "node02"} {
		tc.nodes[survivor].mod.OnEvent(func(ev Event) {
			if ev.Type == EventRedeployed && ev.Instance == "tenant-a" && redeployedAt == 0 {
				redeployedAt = ev.At
			}
		})
	}
	tc.eng.RunFor(3 * time.Second)
	if redeployedAt == 0 {
		t.Fatal("never redeployed")
	}
	latency := redeployedAt - crashAt
	// Detection (~200-400ms with defaults) + SAN read + restore.
	if latency > time.Second {
		t.Fatalf("redeploy latency = %v", latency)
	}
}
