package migrate

import (
	"reflect"
	"testing"
)

func TestDirectoryEndpointRecords(t *testing.T) {
	d := NewDirectory()
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n2", Addr: "10.0.0.2:7100"})
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n1", Addr: "10.0.0.1:7100"})
	d.PutEndpoint(EndpointInfo{Service: "auth", Node: "n1", Addr: "10.0.0.1:7100"})

	got := d.EndpointsFor("kv")
	want := []EndpointInfo{
		{Service: "kv", Node: "n1", Addr: "10.0.0.1:7100"},
		{Service: "kv", Node: "n2", Addr: "10.0.0.2:7100"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EndpointsFor(kv) = %+v", got)
	}

	// Upsert replaces in place.
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n1", Addr: "10.0.0.9:7100"})
	if got := d.EndpointsFor("kv")[0].Addr; got != "10.0.0.9:7100" {
		t.Fatalf("upsert addr = %s", got)
	}

	// Full listing is sorted by service then node.
	all := d.Endpoints()
	if len(all) != 3 || all[0].Service != "auth" || all[1].Node != "n1" || all[2].Node != "n2" {
		t.Fatalf("Endpoints() = %+v", all)
	}

	d.RemoveEndpoint("kv", "n2")
	if got := d.EndpointsFor("kv"); len(got) != 1 {
		t.Fatalf("after RemoveEndpoint = %+v", got)
	}
	d.RemoveEndpointsOf("n1")
	if got := d.Endpoints(); len(got) != 0 {
		t.Fatalf("after RemoveEndpointsOf = %+v", got)
	}
	// Removing from an empty directory is a no-op.
	d.RemoveEndpoint("ghost", "n1")
	d.RemoveEndpointsOf("n9")
}
