package migrate

import (
	"reflect"
	"testing"
)

func TestDirectoryEndpointRecords(t *testing.T) {
	d := NewDirectory()
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n2", Addr: "10.0.0.2:7100"})
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n1", Addr: "10.0.0.1:7100"})
	d.PutEndpoint(EndpointInfo{Service: "auth", Node: "n1", Addr: "10.0.0.1:7100"})

	got := d.EndpointsFor("kv")
	want := []EndpointInfo{
		{Service: "kv", Node: "n1", Addr: "10.0.0.1:7100"},
		{Service: "kv", Node: "n2", Addr: "10.0.0.2:7100"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EndpointsFor(kv) = %+v", got)
	}

	// Upsert replaces in place.
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n1", Addr: "10.0.0.9:7100"})
	if got := d.EndpointsFor("kv")[0].Addr; got != "10.0.0.9:7100" {
		t.Fatalf("upsert addr = %s", got)
	}

	// Full listing is sorted by service then node.
	all := d.Endpoints()
	if len(all) != 3 || all[0].Service != "auth" || all[1].Node != "n1" || all[2].Node != "n2" {
		t.Fatalf("Endpoints() = %+v", all)
	}

	if removed, ok := d.RemoveEndpoint("kv", "n2"); !ok || removed.Node != "n2" {
		t.Fatalf("RemoveEndpoint = %+v, %v", removed, ok)
	}
	if got := d.EndpointsFor("kv"); len(got) != 1 {
		t.Fatalf("after RemoveEndpoint = %+v", got)
	}
	if removed := d.RemoveEndpointsOf("n1"); len(removed) != 2 {
		t.Fatalf("RemoveEndpointsOf = %+v", removed)
	}
	if got := d.Endpoints(); len(got) != 0 {
		t.Fatalf("after RemoveEndpointsOf = %+v", got)
	}
	// Removing from an empty directory is a no-op.
	if _, ok := d.RemoveEndpoint("ghost", "n1"); ok {
		t.Fatal("ghost removal reported a record")
	}
	if removed := d.RemoveEndpointsOf("n9"); len(removed) != 0 {
		t.Fatalf("empty RemoveEndpointsOf = %+v", removed)
	}
}

// TestReplaceEndpointsOfReportsExactDeltas pins the resync contract the
// event stream depends on: unchanged records produce no delta, so a
// healed partition's replayed sync emits no spurious service events.
func TestReplaceEndpointsOfReportsExactDeltas(t *testing.T) {
	d := NewDirectory()
	if existed := d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n1", Addr: "a:1"}); existed {
		t.Fatal("first put reported existing")
	}
	if existed := d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n1", Addr: "a:1"}); !existed {
		t.Fatal("re-put did not report existing")
	}
	d.PutEndpoint(EndpointInfo{Service: "auth", Node: "n1", Addr: "a:1"})
	d.PutEndpoint(EndpointInfo{Service: "kv", Node: "n2", Addr: "b:1"})

	// n1's new authoritative set: kv unchanged, auth gone, web new, and
	// an instance-stamped record replacing nothing.
	added, updated, removed := d.ReplaceEndpointsOf("n1", []EndpointInfo{
		{Service: "kv", Node: "n1", Addr: "a:1"},
		{Service: "web", Node: "n1", Addr: "a:1", Instance: "tenant-a"},
	})
	if len(added) != 1 || added[0].Service != "web" || added[0].Instance != "tenant-a" {
		t.Fatalf("added = %+v", added)
	}
	if len(updated) != 0 {
		t.Fatalf("updated = %+v (unchanged record must not appear)", updated)
	}
	if len(removed) != 1 || removed[0].Service != "auth" {
		t.Fatalf("removed = %+v", removed)
	}
	// Identical replay: no deltas at all.
	added, updated, removed = d.ReplaceEndpointsOf("n1", []EndpointInfo{
		{Service: "kv", Node: "n1", Addr: "a:1"},
		{Service: "web", Node: "n1", Addr: "a:1", Instance: "tenant-a"},
	})
	if len(added)+len(updated)+len(removed) != 0 {
		t.Fatalf("replay deltas: +%v ~%v -%v", added, updated, removed)
	}
	// A content change surfaces as updated.
	_, updated, _ = d.ReplaceEndpointsOf("n1", []EndpointInfo{
		{Service: "kv", Node: "n1", Addr: "a:1"},
		{Service: "web", Node: "n1", Addr: "a:1", Instance: "tenant-b"},
	})
	if len(updated) != 1 || updated[0].Instance != "tenant-b" {
		t.Fatalf("updated = %+v", updated)
	}
	// Other nodes' records were never touched.
	if eps := d.EndpointsFor("kv"); len(eps) != 2 {
		t.Fatalf("kv endpoints = %+v", eps)
	}
	// EndpointsAt maps an address back to everything it serves.
	if at := d.EndpointsAt("a:1"); len(at) != 2 {
		t.Fatalf("EndpointsAt(a:1) = %+v", at)
	}
	if at := d.EndpointsAt("ghost:9"); len(at) != 0 {
		t.Fatalf("EndpointsAt(ghost) = %+v", at)
	}
}
