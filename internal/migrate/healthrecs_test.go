package migrate

import (
	"reflect"
	"testing"
	"time"

	"dosgi/internal/health"
)

func hrec(component, node string, status health.Status, cause string) health.Record {
	return health.Record{Component: component, Node: node, Status: status, Cause: cause}
}

func TestDirectoryHealthRecords(t *testing.T) {
	d := NewDirectory()
	d.PutHealth(hrec("remote", "n2", health.StatusOK, ""))
	d.PutHealth(hrec("remote", "n1", health.StatusDegraded, "p99>5ms"))
	d.PutHealth(hrec("resources", "n1", health.StatusOK, ""))

	got := d.HealthFor("remote")
	want := []health.Record{
		hrec("remote", "n1", health.StatusDegraded, "p99>5ms"),
		hrec("remote", "n2", health.StatusOK, ""),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HealthFor(remote) = %+v", got)
	}
	if on := d.HealthOn("n1"); len(on) != 2 || on[0].Component != "remote" || on[1].Component != "resources" {
		t.Fatalf("HealthOn(n1) = %+v", on)
	}
	all := d.HealthRecords()
	if len(all) != 3 || all[0].Node != "n1" || all[1].Node != "n2" || all[2].Component != "resources" {
		t.Fatalf("HealthRecords() = %+v", all)
	}

	d.RemoveHealth("remote", "n2")
	if got := d.HealthFor("remote"); len(got) != 1 {
		t.Fatalf("after RemoveHealth = %+v", got)
	}
	d.RemoveHealthOf("n1")
	if got := d.HealthRecords(); len(got) != 0 {
		t.Fatalf("after RemoveHealthOf = %+v", got)
	}

	// Exact-delta resync, like the other two families.
	d.PutHealth(hrec("remote", "n1", health.StatusOK, ""))
	added, updated, removed := d.ReplaceHealthOf("n1", []health.Record{
		hrec("remote", "n1", health.StatusCritical, "pool"),
		hrec("sla", "n1", health.StatusOK, ""),
	})
	if len(added) != 1 || added[0].Component != "sla" ||
		len(updated) != 1 || updated[0].Status != health.StatusCritical ||
		len(removed) != 0 {
		t.Fatalf("resync deltas: +%v ~%v -%v", added, updated, removed)
	}
	// Converged replay is silent — what makes health anti-entropy safe.
	added, updated, removed = d.ReplaceHealthOf("n1", []health.Record{
		hrec("remote", "n1", health.StatusCritical, "pool"),
		hrec("sla", "n1", health.StatusOK, ""),
	})
	if len(added)+len(updated)+len(removed) != 0 {
		t.Fatalf("replay deltas: +%v ~%v -%v", added, updated, removed)
	}
}

// TestHealthReplicationAndPruning proves the third family rides the same
// engine end to end: announced records replicate to every node with
// exact-delta hooks, steady state is silent through anti-entropy ticks,
// and a crashed node's health records are pruned deterministically on
// the view change — no phantom health for dead nodes.
func TestHealthReplicationAndPruning(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.settle()

	var changes []HealthChange
	tc.nodes["node02"].mod.OnHealthChange(func(ch HealthChange) { changes = append(changes, ch) })

	tc.nodes["node00"].mod.AnnounceHealth(health.Record{Component: "remote", Status: health.StatusOK})
	tc.nodes["node01"].mod.AnnounceHealth(health.Record{Component: "remote", Status: health.StatusOK})
	tc.settle()

	for id, n := range tc.nodes {
		recs := n.mod.Directory().HealthFor("remote")
		if len(recs) != 2 || recs[0].Node != "node00" || recs[1].Node != "node01" {
			t.Fatalf("%s sees remote health %+v", id, recs)
		}
	}
	if len(changes) != 2 {
		t.Fatalf("observer changes = %+v", changes)
	}

	// Steady state across several anti-entropy periods: silent.
	before := len(changes)
	tc.eng.RunFor(3 * DefaultResyncEvery)
	if len(changes) != before {
		t.Fatalf("steady-state anti-entropy fired hooks: %+v", changes[before:])
	}
	if st := tc.nodes["node02"].mod.HealthStats(); st.SilentSyncs == 0 {
		t.Fatalf("no silent health syncs counted: %+v", st)
	}

	// A transition replicates as an exact Updated delta.
	tc.nodes["node00"].mod.AnnounceHealth(health.Record{
		Component: "remote", Status: health.StatusDegraded, Cause: "p99>5ms",
	})
	tc.settle()
	last := changes[len(changes)-1]
	if last.Type != Updated || last.Info.Status != health.StatusDegraded || last.Info.Cause != "p99>5ms" {
		t.Fatalf("transition change = %+v", last)
	}
	for id, n := range tc.nodes {
		recs := n.mod.Directory().HealthFor("remote")
		if recs[0].Status != health.StatusDegraded {
			t.Fatalf("%s did not converge on DEGRADED: %+v", id, recs)
		}
	}

	// Crash the degraded node: its health records vanish everywhere via
	// deterministic dead-holder pruning, with Removed deltas.
	before = len(changes)
	tc.crash("node00")
	tc.eng.RunFor(5 * time.Second)
	for _, id := range []string{"node01", "node02"} {
		recs := tc.nodes[id].mod.Directory().HealthFor("remote")
		if len(recs) != 1 || recs[0].Node != "node01" {
			t.Fatalf("%s still sees phantom health: %+v", id, recs)
		}
	}
	sawRemove := false
	for _, ch := range changes[before:] {
		if ch.Type == Removed && ch.Info.Node == "node00" {
			sawRemove = true
		}
	}
	if !sawRemove {
		t.Fatalf("no Removed delta for the crashed node: %+v", changes[before:])
	}
	if st := tc.nodes["node02"].mod.HealthStats(); st.Pruned == 0 {
		t.Fatalf("prune not counted: %+v", st)
	}

	// Withdraw clears the surviving node's record cluster-wide.
	tc.nodes["node01"].mod.WithdrawHealth("remote")
	tc.settle()
	if recs := tc.nodes["node02"].mod.Directory().HealthFor("remote"); len(recs) != 0 {
		t.Fatalf("withdrawn record survived: %+v", recs)
	}
}
