package migrate

import (
	"fmt"
	"testing"
	"testing/quick"

	"dosgi/internal/core"
)

func inst(id string, cpu, mem int64, prio int) InstanceInfo {
	return InstanceInfo{ID: core.InstanceID(id), CPU: cpu, Memory: mem, Priority: prio}
}

func node(id string, cpuCap, memCap, cpuUsed int64) NodeLoad {
	return NodeLoad{Node: id, CPUCapacity: cpuCap, MemCapacity: memCap, CPUUsed: cpuUsed}
}

func TestPlaceSpreadsAcrossNodes(t *testing.T) {
	instances := []InstanceInfo{
		inst("a", 500, 0, 0), inst("b", 500, 0, 0), inst("c", 500, 0, 0), inst("d", 500, 0, 0),
	}
	nodes := []NodeLoad{node("n1", 2000, 0, 0), node("n2", 2000, 0, 0)}
	assigned, unplaced := Place(instances, nodes, BestEffort)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced = %v", unplaced)
	}
	count := map[string]int{}
	for _, n := range assigned {
		count[n]++
	}
	if count["n1"] != 2 || count["n2"] != 2 {
		t.Fatalf("distribution = %v", count)
	}
}

func TestPlacePrefersLeastLoaded(t *testing.T) {
	instances := []InstanceInfo{inst("a", 100, 0, 0)}
	nodes := []NodeLoad{node("n1", 1000, 0, 800), node("n2", 1000, 0, 100)}
	assigned, _ := Place(instances, nodes, BestEffort)
	if assigned["a"] != "n2" {
		t.Fatalf("assigned = %v", assigned)
	}
}

func TestPlaceStrictRefusesOverflow(t *testing.T) {
	instances := []InstanceInfo{
		inst("big", 900, 0, 5),
		inst("small", 200, 0, 1),
	}
	nodes := []NodeLoad{node("n1", 1000, 0, 0)}
	assigned, unplaced := Place(instances, nodes, Strict)
	// Priority 5 goes first and fits; the small one no longer fits.
	if assigned["big"] != "n1" {
		t.Fatalf("assigned = %v", assigned)
	}
	if len(unplaced) != 1 || unplaced[0] != "small" {
		t.Fatalf("unplaced = %v", unplaced)
	}
	// BestEffort places both regardless.
	assigned, unplaced = Place(instances, nodes, BestEffort)
	if len(unplaced) != 0 || len(assigned) != 2 {
		t.Fatalf("best-effort: %v / %v", assigned, unplaced)
	}
}

func TestPlaceMemoryConstraint(t *testing.T) {
	instances := []InstanceInfo{inst("a", 10, 600, 0)}
	nodes := []NodeLoad{
		{Node: "n1", CPUCapacity: 1000, MemCapacity: 512, CPUUsed: 0},
		{Node: "n2", CPUCapacity: 1000, MemCapacity: 1024, CPUUsed: 900},
	}
	assigned, _ := Place(instances, nodes, Strict)
	// n1 is less CPU-loaded but lacks memory; strict placement must pick n2.
	if assigned["a"] != "n2" {
		t.Fatalf("assigned = %v", assigned)
	}
}

func TestPlaceNoNodes(t *testing.T) {
	assigned, unplaced := Place([]InstanceInfo{inst("a", 1, 1, 0)}, nil, BestEffort)
	if len(assigned) != 0 || len(unplaced) != 1 {
		t.Fatalf("%v / %v", assigned, unplaced)
	}
}

func TestPlacePriorityOrder(t *testing.T) {
	// One slot; highest priority must win it under Strict.
	instances := []InstanceInfo{
		inst("low", 800, 0, 1),
		inst("high", 800, 0, 9),
	}
	nodes := []NodeLoad{node("n1", 1000, 0, 0)}
	assigned, unplaced := Place(instances, nodes, Strict)
	if assigned["high"] != "n1" {
		t.Fatalf("assigned = %v", assigned)
	}
	if len(unplaced) != 1 || unplaced[0] != "low" {
		t.Fatalf("unplaced = %v", unplaced)
	}
}

// Property: placement is deterministic regardless of input order, and
// never assigns to unknown nodes.
func TestPlaceDeterminismProperty(t *testing.T) {
	prop := func(seed uint8, nInst, nNodes uint8) bool {
		ni := int(nInst%12) + 1
		nn := int(nNodes%4) + 1
		var instances []InstanceInfo
		for i := 0; i < ni; i++ {
			instances = append(instances, inst(
				fmt.Sprintf("i%02d", i),
				int64((int(seed)+i*37)%500+50),
				int64((int(seed)+i*13)%256),
				(int(seed)+i)%3,
			))
		}
		var nodes []NodeLoad
		for i := 0; i < nn; i++ {
			nodes = append(nodes, node(fmt.Sprintf("n%02d", i), 2000, 4096, int64((int(seed)*i)%700)))
		}
		a1, u1 := Place(instances, nodes, Strict)

		// Reverse input order; result must be identical.
		rev := make([]InstanceInfo, ni)
		for i := range instances {
			rev[ni-1-i] = instances[i]
		}
		revNodes := make([]NodeLoad, nn)
		for i := range nodes {
			revNodes[nn-1-i] = nodes[i]
		}
		a2, u2 := Place(rev, revNodes, Strict)
		if len(a1) != len(a2) || len(u1) != len(u2) {
			return false
		}
		for id, n := range a1 {
			if a2[id] != n {
				return false
			}
			found := false
			for _, nd := range nodes {
				if nd.Node == n {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		for i := range u1 {
			if u1[i] != u2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: under Strict mode, no node's capacity is ever exceeded.
func TestPlaceCapacityProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		var instances []InstanceInfo
		for i := 0; i < 10; i++ {
			instances = append(instances, inst(fmt.Sprintf("i%d", i), int64((int(seed)+i*61)%600+10), 0, 0))
		}
		nodes := []NodeLoad{node("a", 1000, 0, 0), node("b", 1500, 0, 200)}
		assigned, _ := Place(instances, nodes, Strict)
		used := map[string]int64{"a": 0, "b": 200}
		for id, n := range assigned {
			for _, in := range instances {
				if in.ID == id {
					used[n] += in.CPU
				}
			}
		}
		return used["a"] <= 1000 && used["b"] <= 1500
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastLoaded(t *testing.T) {
	nodes := []NodeLoad{node("b", 1000, 0, 500), node("a", 1000, 0, 500), node("c", 1000, 0, 100)}
	if got := LeastLoaded(nodes); got != "c" {
		t.Fatalf("LeastLoaded = %s", got)
	}
	// Tie broken by id.
	nodes = nodes[:2]
	if got := LeastLoaded(nodes); got != "a" {
		t.Fatalf("LeastLoaded tie = %s", got)
	}
	if got := LeastLoaded(nil); got != "" {
		t.Fatalf("LeastLoaded(nil) = %q", got)
	}
}

func TestDirectoryLoads(t *testing.T) {
	d := NewDirectory()
	d.PutNode(NodeInfo{Node: "n1", CPUCapacity: 2000, MemCapacity: 1 << 30})
	d.PutNode(NodeInfo{Node: "n2", CPUCapacity: 1000, MemCapacity: 1 << 30})
	d.PutInstance(InstanceInfo{ID: "a", Node: "n1", CPU: 300, Memory: 100})
	d.PutInstance(InstanceInfo{ID: "b", Node: "n1", CPU: 200, Memory: 50})
	d.PutInstance(InstanceInfo{ID: "c", Node: "n2", CPU: 100, Memory: 25})
	d.PutInstance(InstanceInfo{ID: "d", Node: "dead", CPU: 999, Memory: 999})

	loads := d.Loads([]string{"n1", "n2"})
	if len(loads) != 2 {
		t.Fatalf("loads = %v", loads)
	}
	if loads[0].Node != "n1" || loads[0].CPUUsed != 500 || loads[0].MemUsed != 150 {
		t.Fatalf("n1 load = %+v", loads[0])
	}
	if loads[1].Node != "n2" || loads[1].CPUUsed != 100 {
		t.Fatalf("n2 load = %+v", loads[1])
	}
}
