package migrate

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dosgi/internal/gcs"
	"dosgi/internal/health"
)

// TestShardRouterDeterministic pins the routing contract the whole
// sharded directory rests on: the router is a pure function of
// (key, shard count) — two independently constructed routers agree on
// every key, and re-scoring a key any number of times never moves it
// while the shard count is fixed.
func TestShardRouterDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16} {
		a, b := NewShardRouter(n), NewShardRouter(n)
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("svc-%04d", i)
			sa := a.Shard(key)
			if sa < 0 || sa >= n {
				t.Fatalf("shards=%d key=%s routed out of range: %d", n, key, sa)
			}
			if sb := b.Shard(key); sb != sa {
				t.Fatalf("shards=%d key=%s: routers disagree (%d vs %d)", n, key, sa, sb)
			}
			if again := a.Shard(key); again != sa {
				t.Fatalf("shards=%d key=%s moved: %d then %d", n, key, sa, again)
			}
		}
	}
}

// TestShardRouterBalance: rendezvous hashing must spread keys roughly
// evenly — no shard may own more than twice or less than half its fair
// share over a 16-shard split of 10k keys.
func TestShardRouterBalance(t *testing.T) {
	const n, keys = 16, 10000
	r := NewShardRouter(n)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("endpoint-%05d", i))]++
	}
	fair := keys / n
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): %v", s, c, keys, fair, counts)
		}
	}
}

// TestShardRoutingAgreesAcrossNodesAndViews: every node of a sharded
// cluster computes the same placement for the same key, and a view
// change (node crash) moves no keys — placement depends on the shard
// count alone, never on membership.
func TestShardRoutingAgreesAcrossNodesAndViews(t *testing.T) {
	tc := newShardedTestClusterSeed(t, 3, 4, 1)
	tc.settle()

	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("svc-%03d", i)
	}
	want := make([]int, len(keys))
	for i, k := range keys {
		want[i] = tc.nodes["node00"].mod.ShardOf(k)
		for id, n := range tc.nodes {
			if got := n.mod.ShardOf(k); got != want[i] {
				t.Fatalf("%s routes %s to %d, node00 to %d", id, k, got, want[i])
			}
		}
	}

	tc.crash("node02")
	tc.eng.RunFor(3 * time.Second)
	for i, k := range keys {
		for _, id := range []string{"node00", "node01"} {
			if got := tc.nodes[id].mod.ShardOf(k); got != want[i] {
				t.Fatalf("after view change %s routes %s to %d, was %d", id, k, got, want[i])
			}
		}
	}
}

// TestShardedDirectoryConverges runs the full announce/withdraw flow on
// a sharded cluster: records spanning every shard converge on every
// node, the per-family counters aggregate across shards, subscribers
// see the merged exact-delta stream, and each shard's stats line shows
// its own membership.
func TestShardedDirectoryConverges(t *testing.T) {
	const shards = 4
	tc := newShardedTestClusterSeed(t, 3, shards, 1)
	tc.settle()

	var changes []EndpointChange
	tc.nodes["node02"].mod.OnEndpointChange(func(ch EndpointChange) {
		changes = append(changes, ch)
	})

	// Enough keys to land on every shard with overwhelming probability.
	const keys = 32
	hit := make(map[int]bool)
	for i := 0; i < keys; i++ {
		svc := fmt.Sprintf("svc-%02d", i)
		hit[tc.nodes["node00"].mod.ShardOf(svc)] = true
		tc.nodes["node00"].mod.AnnounceEndpoint(svc, fmt.Sprintf("10.0.0.1:%d", 8000+i))
		tc.nodes["node01"].mod.AnnounceArtifact(art(fmt.Sprintf("digest-%02d", i), "node01"))
	}
	tc.nodes["node01"].mod.AnnounceHealth(hrec("comp", "node01", health.StatusOK, ""))
	if len(hit) != shards {
		t.Fatalf("test keys cover only %d of %d shards", len(hit), shards)
	}
	tc.settle()

	for id, n := range tc.nodes {
		if got := len(n.mod.Directory().Endpoints()); got != keys {
			t.Fatalf("%s sees %d endpoints, want %d", id, got, keys)
		}
		if got := len(n.mod.Directory().Artifacts()); got != keys {
			t.Fatalf("%s sees %d artifacts, want %d", id, got, keys)
		}
		if got := len(n.mod.Directory().HealthRecords()); got != 1 {
			t.Fatalf("%s sees %d health records, want 1", id, got)
		}
	}
	if len(changes) != keys {
		t.Fatalf("subscriber saw %d endpoint changes, want %d", len(changes), keys)
	}

	// Shard stats: every shard reports full membership, per-shard Added
	// sums to the family total.
	st := tc.nodes["node02"].mod.ShardStats()
	if len(st) != shards {
		t.Fatalf("ShardStats returned %d entries, want %d", len(st), shards)
	}
	var added int64
	for _, s := range st {
		if s.Members != 3 {
			t.Fatalf("shard %d membership = %d, want 3", s.Shard, s.Members)
		}
		added += s.Endpoints.Added
	}
	if total := tc.nodes["node02"].mod.EndpointStats().Added; added != total {
		t.Fatalf("per-shard Added sums to %d, family total %d", added, total)
	}

	// Withdraw half the endpoints; exact deltas across all shards.
	for i := 0; i < keys; i += 2 {
		tc.nodes["node00"].mod.WithdrawEndpoint(fmt.Sprintf("svc-%02d", i))
	}
	tc.settle()
	for id, n := range tc.nodes {
		if got := len(n.mod.Directory().Endpoints()); got != keys/2 {
			t.Fatalf("%s sees %d endpoints after withdraw, want %d", id, got, keys/2)
		}
	}
	// Converged sharded directory stays silent through anti-entropy.
	before := len(changes)
	tc.eng.RunFor(3 * DefaultResyncEvery)
	if len(changes) != before {
		t.Fatalf("converged sharded resync emitted %d spurious deltas", len(changes)-before)
	}
}

// TestShardedPruningDeterministicUnderChurn is the sharded matrix run of
// the record engine's churn regression: for shard counts 1 and 4 and
// several seeds, a holder announcing records across all shards right up
// to its crash must leave every survivor with the identical directory
// and no record naming the dead holder — each shard's view-driven
// pruning must be as deterministic as the single group's was.
func TestShardedPruningDeterministicUnderChurn(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				tc := newShardedTestClusterSeed(t, 4, shards, seed)
				tc.settle()
				for id, n := range tc.nodes {
					n.mod.AnnounceArtifact(art("base-"+id, id))
				}
				tc.settle()

				victim := tc.nodes["node03"]
				for i := 0; i < 8; i++ { // spread late records across shards
					victim.mod.AnnounceArtifact(art(fmt.Sprintf("late-%d", i), "node03"))
					victim.mod.AnnounceEndpoint(fmt.Sprintf("late-svc-%d", i), "x:1")
				}
				victim.mod.antiEntropy()
				tc.eng.RunFor(time.Duration(seed) * 700 * time.Microsecond)
				tc.crash("node03")
				tc.eng.RunFor(3 * time.Second)

				survivors := []string{"node00", "node01", "node02"}
				refArts := tc.nodes[survivors[0]].mod.Directory().Artifacts()
				refEps := tc.nodes[survivors[0]].mod.Directory().Endpoints()
				for _, rec := range refArts {
					if rec.Node == "node03" {
						t.Fatalf("phantom artifact of dead holder survived: %+v", rec)
					}
				}
				for _, rec := range refEps {
					if rec.Node == "node03" {
						t.Fatalf("phantom endpoint of dead holder survived: %+v", rec)
					}
				}
				if len(refArts) != 3 { // one base artifact per survivor
					t.Fatalf("reference artifact directory = %+v", refArts)
				}
				for _, id := range survivors[1:] {
					if got := tc.nodes[id].mod.Directory().Artifacts(); !reflect.DeepEqual(got, refArts) {
						t.Fatalf("artifact directories diverged:\n%s: %+v\n%s: %+v",
							survivors[0], refArts, id, got)
					}
					if got := tc.nodes[id].mod.Directory().Endpoints(); !reflect.DeepEqual(got, refEps) {
						t.Fatalf("endpoint directories diverged:\n%s: %+v\n%s: %+v",
							survivors[0], refEps, id, got)
					}
				}
			})
		}
	}
}

// TestShardSyncScoping pins the cross-shard isolation property of
// per-shard authoritative syncs: one shard's sync (an empty replacement
// for a holder) must not erase the holder's records that live in other
// shards, and a sync carrying keys outside the shard's subset must not
// apply them.
func TestShardSyncScoping(t *testing.T) {
	tc := newShardedTestClusterSeed(t, 2, 4, 1)
	tc.settle()
	mod := tc.nodes["node00"].mod

	// node01 announces records across shards, normally.
	var digests []string
	for i := 0; i < 8; i++ {
		d := fmt.Sprintf("scope-%02d", i)
		digests = append(digests, d)
		tc.nodes["node01"].mod.AnnounceArtifact(art(d, "node01"))
	}
	tc.settle()
	if got := len(mod.Directory().Artifacts()); got != len(digests) {
		t.Fatalf("replicated %d artifacts, want %d", got, len(digests))
	}

	// Inject an empty authoritative sync for node01 into shard 0 only:
	// node01's records in shards 1..3 must survive.
	victimShard := 0
	var inShard, outShard int
	for _, d := range digests {
		if mod.ShardOf(d) == victimShard {
			inShard++
		} else {
			outShard++
		}
	}
	if outShard == 0 {
		t.Skip("all test keys landed in shard 0; adjust key set")
	}
	mod.shards[victimShard].onDeliver(gcs.Message{Body: artifactSync{Node: "node01", Infos: nil}})
	if got := len(mod.Directory().Artifacts()); got != outShard {
		t.Fatalf("shard-0 sync erased other shards' records: %d left, want %d", got, outShard)
	}

	// A sync delivered to shard 0 claiming a key owned by another shard
	// must be ignored: a shard only speaks for its own keys.
	var foreign string
	for _, d := range digests {
		if mod.ShardOf(d) != victimShard {
			foreign = d
			break
		}
	}
	mod.shards[victimShard].onDeliver(gcs.Message{Body: artifactSync{
		Node: "node01", Infos: []ArtifactInfo{art(foreign, "node01"), art("smuggled", "node01")}}})
	if mod.ShardOf("smuggled") != victimShard {
		// Whatever shard owns "smuggled", shard 0's sync must not have
		// applied it.
		for _, rec := range mod.Directory().Artifacts() {
			if rec.Digest == "smuggled" {
				t.Fatal("shard applied a key outside its subset")
			}
		}
	}
}
