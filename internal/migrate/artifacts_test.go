package migrate

import (
	"reflect"
	"testing"
)

func art(digest, node string) ArtifactInfo {
	return ArtifactInfo{
		Digest: digest, Location: "app:" + digest, SymbolicName: "com." + digest,
		Version: "1.0.0", Size: 100, ChunkSize: 64, Chunks: 2, Signer: "dev", Node: node,
	}
}

func TestDirectoryArtifactRecords(t *testing.T) {
	d := NewDirectory()
	d.PutArtifact(art("aaa", "n2"))
	d.PutArtifact(art("aaa", "n1"))
	d.PutArtifact(art("bbb", "n1"))

	got := d.ArtifactReplicas("aaa")
	want := []ArtifactInfo{art("aaa", "n1"), art("aaa", "n2")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ArtifactReplicas(aaa) = %+v", got)
	}

	// Lookup by install location.
	rec, ok := d.ArtifactByLocation("app:bbb")
	if !ok || rec.Digest != "bbb" {
		t.Fatalf("ArtifactByLocation = %+v (ok=%v)", rec, ok)
	}
	if _, ok := d.ArtifactByLocation("app:ghost"); ok {
		t.Fatal("found a ghost artifact")
	}

	// Full listing sorted by digest then node.
	all := d.Artifacts()
	if len(all) != 3 || all[0].Node != "n1" || all[1].Node != "n2" || all[2].Digest != "bbb" {
		t.Fatalf("Artifacts() = %+v", all)
	}

	d.RemoveArtifact("aaa", "n2")
	if got := d.ArtifactReplicas("aaa"); len(got) != 1 {
		t.Fatalf("after RemoveArtifact = %+v", got)
	}
	d.RemoveArtifactsOf("n1")
	if got := d.Artifacts(); len(got) != 0 {
		t.Fatalf("after RemoveArtifactsOf = %+v", got)
	}
	// Removing from an empty directory is a no-op.
	d.RemoveArtifact("ghost", "n1")
	d.RemoveArtifactsOf("n9")
}

func TestDirectoryReplaceArtifactsOf(t *testing.T) {
	d := NewDirectory()
	if existed := d.PutArtifact(art("aaa", "n1")); existed {
		t.Fatal("first put reported existing")
	}
	if existed := d.PutArtifact(art("aaa", "n1")); !existed {
		t.Fatal("re-put did not report existing")
	}
	d.PutArtifact(art("bbb", "n1"))
	d.PutArtifact(art("aaa", "n2"))

	// The anti-entropy resync: n1 now holds only ccc; its stale aaa/bbb
	// records vanish, other nodes' records survive. Deltas are exact.
	added, updated, removed := d.ReplaceArtifactsOf("n1", []ArtifactInfo{art("ccc", "n1")})
	if len(added) != 1 || added[0].Digest != "ccc" {
		t.Fatalf("added = %+v", added)
	}
	if len(updated) != 0 {
		t.Fatalf("updated = %+v", updated)
	}
	if len(removed) != 2 || removed[0].Digest != "aaa" || removed[1].Digest != "bbb" {
		t.Fatalf("removed = %+v", removed)
	}
	all := d.Artifacts()
	if len(all) != 2 || all[0].Digest != "aaa" || all[0].Node != "n2" || all[1].Digest != "ccc" {
		t.Fatalf("after replace = %+v", all)
	}
	// Identical replay: no deltas at all — the property that makes
	// periodic artifact anti-entropy silent when converged.
	added, updated, removed = d.ReplaceArtifactsOf("n1", []ArtifactInfo{art("ccc", "n1")})
	if len(added)+len(updated)+len(removed) != 0 {
		t.Fatalf("replay deltas: +%v ~%v -%v", added, updated, removed)
	}
	// A content change surfaces as updated.
	changed := art("ccc", "n1")
	changed.Location = "app:moved"
	_, updated, _ = d.ReplaceArtifactsOf("n1", []ArtifactInfo{changed})
	if len(updated) != 1 || updated[0].Location != "app:moved" {
		t.Fatalf("updated = %+v", updated)
	}
	// Records claiming another node are ignored (a node only speaks for
	// itself in a sync).
	added, updated, removed = d.ReplaceArtifactsOf("n2", []ArtifactInfo{art("ddd", "n3")})
	if got := d.Artifacts(); len(got) != 1 || got[0].Digest != "ccc" {
		t.Fatalf("forged sync applied: %+v", got)
	}
	// The forged record contributes no delta; n2's vanished aaa does.
	if len(added) != 0 || len(updated) != 0 || len(removed) != 1 || removed[0].Digest != "aaa" {
		t.Fatalf("forged sync deltas: +%v ~%v -%v", added, updated, removed)
	}
}
