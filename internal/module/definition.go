package module

import (
	"fmt"
	"sync"

	"dosgi/internal/manifest"
)

// Activator receives lifecycle callbacks when its bundle starts and stops,
// mirroring org.osgi.framework.BundleActivator.
type Activator interface {
	Start(ctx *Context) error
	Stop(ctx *Context) error
}

// ActivatorFuncs adapts plain functions to the Activator interface. Either
// field may be nil.
type ActivatorFuncs struct {
	OnStart func(ctx *Context) error
	OnStop  func(ctx *Context) error
}

var _ Activator = (*ActivatorFuncs)(nil)

// Start implements Activator.
func (a *ActivatorFuncs) Start(ctx *Context) error {
	if a.OnStart == nil {
		return nil
	}
	return a.OnStart(ctx)
}

// Stop implements Activator.
func (a *ActivatorFuncs) Stop(ctx *Context) error {
	if a.OnStop == nil {
		return nil
	}
	return a.OnStop(ctx)
}

// Definition is the installable content of a bundle: the analog of a bundle
// JAR. Go cannot load code dynamically, so "classes" are named entries whose
// payload is any Go value (conventionally a constructor function); the
// framework reproduces the classloader semantics — visibility, wiring,
// delegation, identity — over these entries.
type Definition struct {
	// ManifestText is the raw MANIFEST.MF-style text.
	ManifestText string
	// NewActivator constructs the activator instance named by
	// Bundle-Activator. It may be nil for library bundles.
	NewActivator func() Activator
	// Classes maps fully-qualified class names ("com.x.y.Widget") to their
	// payloads. The package part determines export visibility.
	Classes map[string]any
	// DataFiles seeds the bundle's persistent data area on first install.
	DataFiles map[string][]byte
}

// DefinitionRegistry maps install locations to bundle definitions — the
// analog of the bundle repository every node can read (the paper assumes
// bundle JARs are reachable from all nodes via the SAN).
type DefinitionRegistry struct {
	mu     sync.RWMutex
	defs   map[string]*Definition
	parent *DefinitionRegistry
}

// NewDefinitionRegistry returns an empty registry.
func NewDefinitionRegistry() *DefinitionRegistry {
	return &DefinitionRegistry{defs: make(map[string]*Definition)}
}

// NewLayeredDefinitionRegistry returns a registry whose lookups fall back
// to parent when the location is not registered locally. Adds always land
// in the local layer, so per-node registries can overlay a shared base set
// with bundles provisioned onto just this node.
func NewLayeredDefinitionRegistry(parent *DefinitionRegistry) *DefinitionRegistry {
	return &DefinitionRegistry{defs: make(map[string]*Definition), parent: parent}
}

// Add registers def under location, replacing any previous definition (the
// analog of replacing a JAR, picked up by Bundle.Update).
func (r *DefinitionRegistry) Add(location string, def *Definition) error {
	if def == nil {
		return fmt.Errorf("module: nil definition for %q", location)
	}
	if _, err := manifest.Parse(def.ManifestText); err != nil {
		return fmt.Errorf("module: definition %q: %w", location, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defs[location] = def
	return nil
}

// MustAdd is Add that panics on error, for statically known definitions.
func (r *DefinitionRegistry) MustAdd(location string, def *Definition) {
	if err := r.Add(location, def); err != nil {
		panic(err)
	}
}

// Get returns the definition for location, consulting the parent layer
// when the local one misses.
func (r *DefinitionRegistry) Get(location string) (*Definition, bool) {
	r.mu.RLock()
	d, ok := r.defs[location]
	parent := r.parent
	r.mu.RUnlock()
	if !ok && parent != nil {
		return parent.Get(location)
	}
	return d, ok
}

// Locations returns all registered locations, including the parent
// layer's, deduplicated.
func (r *DefinitionRegistry) Locations() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.defs))
	local := make(map[string]bool, len(r.defs))
	for loc := range r.defs {
		out = append(out, loc)
		local[loc] = true
	}
	parent := r.parent
	r.mu.RUnlock()
	if parent != nil {
		for _, loc := range parent.Locations() {
			if !local[loc] {
				out = append(out, loc)
			}
		}
	}
	return out
}
