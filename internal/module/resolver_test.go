package module

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestResolveVersionSelection(t *testing.T) {
	lib1 := libDef()
	lib2 := defFor(`Bundle-SymbolicName: com.example.lib2
Bundle-Version: 1.0.0
Export-Package: com.example.lib;version="1.5"
`, map[string]any{"com.example.lib.Util": "util-v1.5"})

	f := newTestFramework(t, map[string]*Definition{
		"loc:lib1": lib1,
		"loc:lib2": lib2,
		"loc:app":  appDef(&testActivator{}),
	})
	mustInstall(t, f, "loc:lib1")
	mustInstall(t, f, "loc:lib2")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)

	// The resolver must pick the highest version inside [1.0,2.0).
	cls, err := app.LoadClass("com.example.lib.Util")
	if err != nil {
		t.Fatal(err)
	}
	if cls.Value != "util-v1.5" {
		t.Fatalf("wired to %v, want util-v1.5 (highest matching version)", cls.Value)
	}
}

func TestResolvePrefersAlreadyResolvedExporter(t *testing.T) {
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(&testActivator{}),
	})
	lib := mustInstall(t, f, "loc:lib")
	mustStart(t, lib) // resolves lib first

	// Now add a higher-version exporter, unresolved.
	lib2 := defFor(`Bundle-SymbolicName: com.example.lib2
Bundle-Version: 1.0.0
Export-Package: com.example.lib;version="1.9"
`, map[string]any{"com.example.lib.Util": "util-v1.9"})
	if err := f.Definitions().Add("loc:lib2", lib2); err != nil {
		t.Fatal(err)
	}
	mustInstall(t, f, "loc:lib2")

	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)
	cls, err := app.LoadClass("com.example.lib.Util")
	if err != nil {
		t.Fatal(err)
	}
	// OSGi prefers already-resolved exporters over better versions.
	if cls.Value != "util-v1" {
		t.Fatalf("wired to %v, want util-v1 (resolved exporter preferred)", cls.Value)
	}
}

func TestResolveCycle(t *testing.T) {
	a := defFor(`Bundle-SymbolicName: cyc.a
Bundle-Version: 1.0.0
Import-Package: cyc.b.api
Export-Package: cyc.a.api
`, map[string]any{"cyc.a.api.A": "A"})
	b := defFor(`Bundle-SymbolicName: cyc.b
Bundle-Version: 1.0.0
Import-Package: cyc.a.api
Export-Package: cyc.b.api
`, map[string]any{"cyc.b.api.B": "B"})
	f := newTestFramework(t, map[string]*Definition{"loc:a": a, "loc:b": b})
	ba := mustInstall(t, f, "loc:a")
	bb := mustInstall(t, f, "loc:b")
	if err := f.ResolveAll(); err != nil {
		t.Fatalf("cyclic bundles must co-resolve: %v", err)
	}
	if ba.State() != StateResolved || bb.State() != StateResolved {
		t.Fatalf("states: %v, %v", ba.State(), bb.State())
	}
	cls, err := ba.LoadClass("cyc.b.api.B")
	if err != nil || cls.Value != "B" {
		t.Fatalf("cross-cycle load: %v, %v", cls, err)
	}
}

func TestResolveOptionalImport(t *testing.T) {
	opt := defFor(`Bundle-SymbolicName: opt.app
Bundle-Version: 1.0.0
Import-Package: missing.pkg;resolution:=optional
`, map[string]any{"opt.app.Main": "m"})
	f := newTestFramework(t, map[string]*Definition{"loc:opt": opt})
	b := mustInstall(t, f, "loc:opt")
	if err := f.ResolveAll(); err != nil {
		t.Fatal(err)
	}
	if b.State() != StateResolved {
		t.Fatalf("state = %v", b.State())
	}
	if _, err := b.LoadClass("missing.pkg.X"); !IsClassNotFound(err) {
		t.Fatalf("unwired optional import load error = %v", err)
	}
}

func TestResolveFailurePartialCommit(t *testing.T) {
	// ok resolves; broken does not; broken must not poison ok.
	ok := libDef()
	broken := defFor(`Bundle-SymbolicName: com.example.broken
Bundle-Version: 1.0.0
Import-Package: does.not.exist
`, nil)
	f := newTestFramework(t, map[string]*Definition{"loc:ok": ok, "loc:broken": broken})
	bOK := mustInstall(t, f, "loc:ok")
	bBroken := mustInstall(t, f, "loc:broken")
	err := f.ResolveAll()
	var re *ResolutionError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if _, listed := re.Unresolvable["com.example.broken"]; !listed {
		t.Fatalf("unresolvable = %v", re.Unresolvable)
	}
	if bOK.State() != StateResolved {
		t.Fatalf("ok bundle state = %v; failures must not block others", bOK.State())
	}
	if bBroken.State() != StateInstalled {
		t.Fatalf("broken bundle state = %v", bBroken.State())
	}
}

func TestResolveCascadingFailure(t *testing.T) {
	// mid imports from broken; broken imports nothing that exists. Both
	// must fail, in two iterations.
	broken := defFor(`Bundle-SymbolicName: deep.broken
Bundle-Version: 1.0.0
Import-Package: does.not.exist
Export-Package: deep.api
`, nil)
	mid := defFor(`Bundle-SymbolicName: deep.mid
Bundle-Version: 1.0.0
Import-Package: deep.api
`, nil)
	f := newTestFramework(t, map[string]*Definition{"loc:broken": broken, "loc:mid": mid})
	mustInstall(t, f, "loc:broken")
	bMid := mustInstall(t, f, "loc:mid")
	err := f.ResolveAll()
	var re *ResolutionError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if len(re.Unresolvable) != 2 {
		t.Fatalf("unresolvable = %v, want both bundles", re.Unresolvable)
	}
	if bMid.State() != StateInstalled {
		t.Fatalf("mid state = %v", bMid.State())
	}
}

func TestRequireBundle(t *testing.T) {
	host := defFor(`Bundle-SymbolicName: req.host
Bundle-Version: 2.1.0
Export-Package: req.host.api
`, map[string]any{"req.host.api.H": "H", "req.host.internal.Secret": "S"})
	user := defFor(`Bundle-SymbolicName: req.user
Bundle-Version: 1.0.0
Require-Bundle: req.host;bundle-version="[2.0,3.0)"
`, nil)
	f := newTestFramework(t, map[string]*Definition{"loc:host": host, "loc:user": user})
	mustInstall(t, f, "loc:host")
	u := mustInstall(t, f, "loc:user")
	if err := f.ResolveAll(); err != nil {
		t.Fatal(err)
	}
	cls, err := u.LoadClass("req.host.api.H")
	if err != nil || cls.Value != "H" {
		t.Fatalf("require-bundle load: %v, %v", cls, err)
	}
	// Only exported packages are visible through Require-Bundle.
	if _, err := u.LoadClass("req.host.internal.Secret"); !IsClassNotFound(err) {
		t.Fatalf("private package leaked through Require-Bundle: %v", err)
	}
}

func TestRequireBundleVersionMismatch(t *testing.T) {
	host := defFor("Bundle-SymbolicName: req.host\nBundle-Version: 1.0.0\n", nil)
	user := defFor(`Bundle-SymbolicName: req.user
Bundle-Version: 1.0.0
Require-Bundle: req.host;bundle-version="[2.0,3.0)"
`, nil)
	f := newTestFramework(t, map[string]*Definition{"loc:host": host, "loc:user": user})
	mustInstall(t, f, "loc:host")
	u := mustInstall(t, f, "loc:user")
	if err := f.ResolveAll(); err == nil {
		t.Fatal("version-mismatched Require-Bundle resolved")
	}
	if u.State() != StateInstalled {
		t.Fatalf("state = %v", u.State())
	}
}

func TestUsesConstraintConflict(t *testing.T) {
	// Two incompatible versions of pkg "shared". Exporter "svc" exports
	// "svc.api" with uses:="shared" wired to shared v1. A client wiring
	// shared v2 while importing svc.api must be rejected.
	shared1 := defFor(`Bundle-SymbolicName: shared1
Bundle-Version: 1.0.0
Export-Package: shared;version="1.0"
`, nil)
	shared2 := defFor(`Bundle-SymbolicName: shared2
Bundle-Version: 1.0.0
Export-Package: shared;version="2.0"
`, nil)
	svc := defFor(`Bundle-SymbolicName: svc
Bundle-Version: 1.0.0
Import-Package: shared;version="[1.0,2.0)"
Export-Package: svc.api;uses:="shared"
`, nil)
	client := defFor(`Bundle-SymbolicName: client
Bundle-Version: 1.0.0
Import-Package: svc.api,shared;version="[2.0,3.0)"
`, nil)
	f := newTestFramework(t, map[string]*Definition{
		"loc:s1": shared1, "loc:s2": shared2, "loc:svc": svc, "loc:client": client,
	})
	mustInstall(t, f, "loc:s1")
	mustInstall(t, f, "loc:s2")
	mustInstall(t, f, "loc:svc")
	cl := mustInstall(t, f, "loc:client")
	err := f.ResolveAll()
	var re *ResolutionError
	if !errors.As(err, &re) {
		t.Fatalf("expected uses conflict, got %v", err)
	}
	if _, listed := re.Unresolvable["client"]; !listed {
		t.Fatalf("unresolvable = %v, want client", re.Unresolvable)
	}
	if cl.State() != StateInstalled {
		t.Fatalf("client state = %v", cl.State())
	}
}

func TestUsesConstraintConsistentWiring(t *testing.T) {
	// Same topology but the client accepts shared v1: no conflict.
	shared1 := defFor(`Bundle-SymbolicName: shared1
Bundle-Version: 1.0.0
Export-Package: shared;version="1.0"
`, nil)
	svc := defFor(`Bundle-SymbolicName: svc
Bundle-Version: 1.0.0
Import-Package: shared
Export-Package: svc.api;uses:="shared"
`, nil)
	client := defFor(`Bundle-SymbolicName: client
Bundle-Version: 1.0.0
Import-Package: svc.api,shared
`, nil)
	f := newTestFramework(t, map[string]*Definition{
		"loc:s1": shared1, "loc:svc": svc, "loc:client": client,
	})
	mustInstall(t, f, "loc:s1")
	mustInstall(t, f, "loc:svc")
	cl := mustInstall(t, f, "loc:client")
	if err := f.ResolveAll(); err != nil {
		t.Fatal(err)
	}
	if cl.State() != StateResolved {
		t.Fatalf("client state = %v", cl.State())
	}
}

func TestDynamicImport(t *testing.T) {
	dyn := defFor(`Bundle-SymbolicName: dyn.app
Bundle-Version: 1.0.0
DynamicImport-Package: com.example.*
`, nil)
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:dyn": dyn,
	})
	lib := mustInstall(t, f, "loc:lib")
	d := mustInstall(t, f, "loc:dyn")
	if err := f.ResolveAll(); err != nil {
		t.Fatal(err)
	}
	// lib is only INSTALLED-resolved lazily: resolve set included it above.
	_ = lib
	cls, err := d.LoadClass("com.example.lib.Util")
	if err != nil {
		t.Fatalf("dynamic import failed: %v", err)
	}
	if cls.Value != "util-v1" {
		t.Fatalf("value = %v", cls.Value)
	}
	// The dynamic wire is recorded.
	if exp, ok := d.Wiring().ImportedFrom("com.example.lib"); !ok || exp != lib {
		t.Fatal("dynamic wire not recorded")
	}
	// Pattern must not over-match.
	if _, err := d.LoadClass("org.other.Thing"); !IsClassNotFound(err) {
		t.Fatalf("out-of-pattern load error = %v", err)
	}
}

func TestSelfExportPreference(t *testing.T) {
	// A bundle that both imports and exports a package wires to itself at
	// equal versions.
	self := defFor(`Bundle-SymbolicName: selfie
Bundle-Version: 1.0.0
Import-Package: dual;version="1.0"
Export-Package: dual;version="1.0"
`, map[string]any{"dual.Thing": "mine"})
	other := defFor(`Bundle-SymbolicName: other
Bundle-Version: 1.0.0
Export-Package: dual;version="1.0"
`, map[string]any{"dual.Thing": "theirs"})
	f := newTestFramework(t, map[string]*Definition{"loc:self": self, "loc:other": other})
	s := mustInstall(t, f, "loc:self")
	mustInstall(t, f, "loc:other")
	if err := f.ResolveAll(); err != nil {
		t.Fatal(err)
	}
	cls, err := s.LoadClass("dual.Thing")
	if err != nil {
		t.Fatal(err)
	}
	if cls.Value != "mine" {
		t.Fatalf("self-export preference broken: wired to %v", cls.Value)
	}
}

// Property: resolution is deterministic — resolving the same bundle set in
// any installation order yields identical wiring choices (by exporter
// symbolic name).
func TestResolutionDeterminismProperty(t *testing.T) {
	buildDefs := func() map[string]*Definition {
		return map[string]*Definition{
			"loc:l1": defFor("Bundle-SymbolicName: l1\nBundle-Version: 1.0\nExport-Package: p;version=\"1.1\"\n",
				map[string]any{"p.C": "l1"}),
			"loc:l2": defFor("Bundle-SymbolicName: l2\nBundle-Version: 1.0\nExport-Package: p;version=\"1.2\"\n",
				map[string]any{"p.C": "l2"}),
			"loc:l3": defFor("Bundle-SymbolicName: l3\nBundle-Version: 1.0\nExport-Package: p;version=\"1.3\"\n",
				map[string]any{"p.C": "l3"}),
			"loc:app": defFor("Bundle-SymbolicName: app\nBundle-Version: 1.0\nImport-Package: p;version=\"[1.0,2.0)\"\n", nil),
		}
	}
	resolveWith := func(order []string) string {
		f := newTestFramework(t, buildDefs())
		for _, loc := range order {
			mustInstall(t, f, loc)
		}
		if err := f.ResolveAll(); err != nil {
			t.Fatalf("resolve: %v", err)
		}
		app, _ := f.GetBundleByLocation("loc:app")
		cls, err := app.LoadClass("p.C")
		if err != nil {
			t.Fatal(err)
		}
		return cls.Value.(string)
	}
	prop := func(seed uint8) bool {
		locs := []string{"loc:l1", "loc:l2", "loc:l3", "loc:app"}
		// Deterministic permutation from seed.
		for i := len(locs) - 1; i > 0; i-- {
			j := int(seed) % (i + 1)
			seed = seed*31 + 7
			locs[i], locs[j] = locs[j], locs[i]
		}
		return resolveWith(locs) == "l3"
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}
