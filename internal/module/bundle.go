package module

import (
	"fmt"

	"dosgi/internal/manifest"
)

// BundleID identifies a bundle within one framework instance. The system
// bundle is always id 0.
type BundleID int64

// SystemBundleID is the id of the framework's own system bundle.
const SystemBundleID BundleID = 0

// BundleState enumerates the OSGi bundle lifecycle states.
type BundleState int

// Bundle lifecycle states, per OSGi Core section 4.4.2.
const (
	StateUninstalled BundleState = iota + 1
	StateInstalled
	StateResolved
	StateStarting
	StateActive
	StateStopping
)

func (s BundleState) String() string {
	switch s {
	case StateUninstalled:
		return "UNINSTALLED"
	case StateInstalled:
		return "INSTALLED"
	case StateResolved:
		return "RESOLVED"
	case StateStarting:
		return "STARTING"
	case StateActive:
		return "ACTIVE"
	case StateStopping:
		return "STOPPING"
	}
	return "UNKNOWN"
}

// Bundle is an installed unit of deployment: a manifest plus named class
// entries, with a lifecycle managed by its Framework. All methods are safe
// for concurrent use.
type Bundle struct {
	fw       *Framework
	id       BundleID
	location string

	// Mutable state, guarded by fw.mu.
	manifest   *manifest.Manifest
	def        *Definition
	state      BundleState
	startLevel int
	// persistentlyStarted records the administrator's intent: started
	// bundles restart automatically when the framework state is restored
	// (OSGi framework persistence, relied upon by the Migration Module).
	persistentlyStarted bool
	wiring              *Wiring
	activator           Activator
	ctx                 *Context
	data                map[string][]byte
}

// ID returns the bundle id.
func (b *Bundle) ID() BundleID { return b.id }

// Location returns the install location (the "JAR URL").
func (b *Bundle) Location() string { return b.location }

// Framework returns the owning framework.
func (b *Bundle) Framework() *Framework { return b.fw }

// SymbolicName returns Bundle-SymbolicName.
func (b *Bundle) SymbolicName() string {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.manifest.SymbolicName
}

// Version returns Bundle-Version.
func (b *Bundle) Version() manifest.Version {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.manifest.Version
}

// Manifest returns the parsed manifest.
func (b *Bundle) Manifest() *manifest.Manifest {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.manifest
}

// State returns the current lifecycle state.
func (b *Bundle) State() BundleState {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.state
}

// StartLevel returns the bundle's start level.
func (b *Bundle) StartLevel() int {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.startLevel
}

// SetStartLevel changes the bundle's start level. It does not start or stop
// the bundle; the framework start level controls that.
func (b *Bundle) SetStartLevel(level int) error {
	if level < 1 {
		return fmt.Errorf("%w: start level must be >= 1", ErrInvalidState)
	}
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	b.startLevel = level
	return nil
}

// Context returns the bundle's context while the bundle is STARTING, ACTIVE
// or STOPPING, else nil.
func (b *Bundle) Context() *Context {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.ctx
}

// Wiring returns the bundle's current wiring, or nil when unresolved.
func (b *Bundle) Wiring() *Wiring {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.wiring
}

// IsPersistentlyStarted reports whether the bundle restarts automatically
// when the framework state is restored.
func (b *Bundle) IsPersistentlyStarted() bool {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.persistentlyStarted
}

// Start resolves the bundle if needed, runs its activator and moves it to
// ACTIVE. Starting an ACTIVE bundle is a no-op. The started state persists
// across framework snapshots.
func (b *Bundle) Start() error { return b.fw.startBundle(b, true) }

// Stop runs the activator's Stop, unregisters the bundle's services and
// moves it back to RESOLVED.
func (b *Bundle) Stop() error { return b.fw.stopBundle(b, true) }

// Update re-reads the bundle's definition from the framework's definition
// registry, restarting the bundle if it was active. Dependent bundles keep
// their wiring until Framework.RefreshBundles runs, per OSGi update
// semantics.
func (b *Bundle) Update() error { return b.fw.updateBundle(b) }

// Uninstall stops the bundle if needed and removes it from the framework.
func (b *Bundle) Uninstall() error { return b.fw.uninstallBundle(b) }

// LoadClass resolves a class name through the bundle's class space: wired
// imports first, then the bundle's own content, then dynamic imports, then
// — only for virtual frameworks — the explicit parent delegation list.
func (b *Bundle) LoadClass(name string) (Class, error) { return b.fw.loadClass(b, name) }

// DataPut stores content in the bundle's persistent data area (the analog
// of the bundle's private storage directory). The data area survives
// framework snapshot/restore — this is what makes migration-by-restart
// possible for stateful bundles.
func (b *Bundle) DataPut(name string, content []byte) error {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	if b.state == StateUninstalled {
		return ErrUninstalled
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	b.data[name] = cp
	return nil
}

// DataGet reads content from the bundle's persistent data area.
func (b *Bundle) DataGet(name string) ([]byte, bool) {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	content, ok := b.data[name]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	return cp, true
}

// DataDelete removes an entry from the data area.
func (b *Bundle) DataDelete(name string) {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	delete(b.data, name)
}

// DataNames lists the entries of the data area.
func (b *Bundle) DataNames() []string {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	names := make([]string, 0, len(b.data))
	for n := range b.data {
		names = append(names, n)
	}
	return names
}

// RegisteredServices returns the live registrations made by this bundle.
func (b *Bundle) RegisteredServices() []*ServiceReference {
	return b.fw.registry.referencesByOwner(b)
}

// ServicesInUse returns references this bundle currently holds via
// GetService.
func (b *Bundle) ServicesInUse() []*ServiceReference {
	return b.fw.registry.referencesInUseBy(b)
}

// String implements fmt.Stringer.
func (b *Bundle) String() string {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return fmt.Sprintf("%s/%s [%d]", b.manifest.SymbolicName, b.manifest.Version, b.id)
}

// isFragmentOfSystem reports whether this is the system bundle.
func (b *Bundle) isSystem() bool { return b.id == SystemBundleID }
