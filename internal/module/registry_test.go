package module

import (
	"errors"
	"fmt"
	"testing"
)

// startedApp returns a framework plus an ACTIVE app bundle whose context is
// used to exercise the registry.
func startedApp(t *testing.T) (*Framework, *Bundle) {
	t.Helper()
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(&testActivator{}),
	})
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)
	return f, app
}

func TestRegisterAndGetService(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()

	reg, err := ctx.RegisterSingle("echo.Service", "the-service", Properties{"color": "blue"})
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := ctx.ServiceReference("echo.Service")
	if !ok {
		t.Fatal("reference not found")
	}
	if ref.ID() != reg.Reference().ID() {
		t.Fatal("reference mismatch")
	}
	if got := ref.Property("color"); got != "blue" {
		t.Fatalf("property = %v", got)
	}
	svc, err := ctx.GetService(ref)
	if err != nil || svc != "the-service" {
		t.Fatalf("GetService = %v, %v", svc, err)
	}
	inUse := app.ServicesInUse()
	if len(inUse) != 1 {
		t.Fatalf("ServicesInUse = %d", len(inUse))
	}
	if !ctx.UngetService(ref) {
		t.Fatal("UngetService returned false")
	}
	if ctx.UngetService(ref) {
		t.Fatal("double unget returned true")
	}
}

func TestServiceLookupByFilterAndRanking(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()

	if _, err := ctx.RegisterSingle("s", "low", Properties{"grade": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterSingle("s", "high", Properties{"grade": 2, PropServiceRanking: 10}); err != nil {
		t.Fatal(err)
	}

	refs, err := ctx.ServiceReferences("s", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("refs = %d", len(refs))
	}
	svc, _ := ctx.GetService(refs[0])
	if svc != "high" {
		t.Fatalf("ranking order broken: first = %v", svc)
	}

	refs, err = ctx.ServiceReferences("s", "(grade=1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("filtered refs = %d", len(refs))
	}
	svc, _ = ctx.GetService(refs[0])
	if svc != "low" {
		t.Fatalf("filter selected %v", svc)
	}

	if _, err := ctx.ServiceReferences("s", "(bad"); err == nil {
		t.Fatal("invalid filter accepted")
	}
}

func TestServiceUnregister(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()
	reg, _ := ctx.RegisterSingle("s", "svc", nil)
	ref := reg.Reference()
	if err := reg.Unregister(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unregister(); !errors.Is(err, ErrServiceGone) {
		t.Fatalf("double unregister = %v", err)
	}
	if _, err := ctx.GetService(ref); !errors.Is(err, ErrServiceGone) {
		t.Fatalf("get after unregister = %v", err)
	}
	if ref.IsLive() {
		t.Fatal("reference still live")
	}
	if _, ok := ctx.ServiceReference("s"); ok {
		t.Fatal("unregistered service still discoverable")
	}
}

func TestStopUnregistersServices(t *testing.T) {
	f, app := startedApp(t)
	ctx := app.Context()
	if _, err := ctx.RegisterSingle("s", "svc", nil); err != nil {
		t.Fatal(err)
	}
	if err := app.Stop(); err != nil {
		t.Fatal(err)
	}
	refs, _ := f.SystemContext().ServiceReferences("s", "")
	if len(refs) != 0 {
		t.Fatal("bundle stop must unregister its services")
	}
}

func TestServiceEvents(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()
	var events []ServiceEventType
	h, err := ctx.AddServiceListener(func(ev ServiceEvent) {
		events = append(events, ev.Type)
	}, "(objectClass=watched)")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Remove()

	regOther, _ := ctx.RegisterSingle("ignored", "x", nil)
	reg, _ := ctx.RegisterSingle("watched", "y", nil)
	if err := reg.SetProperties(Properties{"updated": true}); err != nil {
		t.Fatal(err)
	}
	_ = reg.Unregister()
	_ = regOther.Unregister()

	want := []ServiceEventType{ServiceRegistered, ServiceModified, ServiceUnregistering}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestSetPropertiesPreservesIdentity(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()
	reg, _ := ctx.RegisterSingle("s", "svc", Properties{"a": 1})
	id := reg.Reference().ID()
	if err := reg.SetProperties(Properties{"b": 2}); err != nil {
		t.Fatal(err)
	}
	ref := reg.Reference()
	if ref.ID() != id {
		t.Fatal("service.id changed")
	}
	if ref.Property("a") != nil {
		t.Fatal("old property survived replacement")
	}
	if ref.Property("b") != 2 {
		t.Fatal("new property missing")
	}
	classes, ok := ref.Property(PropObjectClass).([]string)
	if !ok || len(classes) != 1 || classes[0] != "s" {
		t.Fatalf("objectClass = %v", ref.Property(PropObjectClass))
	}
}

type countingFactory struct {
	gets   int
	ungets int
}

func (cf *countingFactory) GetService(requester *Bundle, reg *ServiceRegistration) any {
	cf.gets++
	return fmt.Sprintf("svc-for-%s", requester.SymbolicName())
}

func (cf *countingFactory) UngetService(requester *Bundle, reg *ServiceRegistration, svc any) {
	cf.ungets++
}

func TestServiceFactoryPerBundleInstances(t *testing.T) {
	f, app := startedApp(t)
	ctx := app.Context()
	cf := &countingFactory{}
	if _, err := ctx.RegisterSingle("factory.svc", cf, nil); err != nil {
		t.Fatal(err)
	}
	ref, _ := ctx.ServiceReference("factory.svc")

	// App gets its own instance, cached across gets.
	s1, _ := ctx.GetService(ref)
	s2, _ := ctx.GetService(ref)
	if s1 != s2 {
		t.Fatal("factory product not cached per bundle")
	}
	if cf.gets != 1 {
		t.Fatalf("factory gets = %d", cf.gets)
	}

	// System bundle gets a different instance.
	sys, err := f.SystemContext().GetService(ref)
	if err != nil {
		t.Fatal(err)
	}
	if sys == s1 {
		t.Fatal("factory must produce per-bundle instances")
	}
	if cf.gets != 2 {
		t.Fatalf("factory gets = %d", cf.gets)
	}

	// Release: two ungets needed for app (two gets).
	ctx.UngetService(ref)
	if cf.ungets != 0 {
		t.Fatal("unget fired before count reached zero")
	}
	ctx.UngetService(ref)
	if cf.ungets != 1 {
		t.Fatalf("ungets = %d", cf.ungets)
	}
}

func TestServiceFactoryReleasedOnUnregister(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()
	cf := &countingFactory{}
	reg, _ := ctx.RegisterSingle("factory.svc", cf, nil)
	ref := reg.Reference()
	if _, err := ctx.GetService(ref); err != nil {
		t.Fatal(err)
	}
	_ = reg.Unregister()
	if cf.ungets != 1 {
		t.Fatalf("unregister must release factory products: ungets = %d", cf.ungets)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()
	if _, err := ctx.RegisterService(nil, "svc", nil); err == nil {
		t.Fatal("empty class list accepted")
	}
	if _, err := ctx.RegisterSingle("s", nil, nil); err == nil {
		t.Fatal("nil service accepted")
	}
}

func TestServiceTracker(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()

	if _, err := ctx.RegisterSingle("tracked", "pre-existing", nil); err != nil {
		t.Fatal(err)
	}

	var added, removed, modified []string
	tr, err := NewServiceTracker(ctx, "tracked", "", TrackerCallbacks{
		Added:    func(ref *ServiceReference, svc any) { added = append(added, svc.(string)) },
		Modified: func(ref *ServiceReference, svc any) { modified = append(modified, svc.(string)) },
		Removed:  func(ref *ServiceReference, svc any) { removed = append(removed, svc.(string)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Open(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if len(added) != 1 || added[0] != "pre-existing" {
		t.Fatalf("added = %v; Open must pick up existing services", added)
	}

	reg2, _ := ctx.RegisterSingle("tracked", "second", Properties{PropServiceRanking: 5})
	if tr.Size() != 2 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if got := tr.GetService(); got != "second" {
		t.Fatalf("GetService = %v, want highest ranking", got)
	}
	if err := reg2.SetProperties(Properties{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if len(modified) != 1 {
		t.Fatalf("modified = %v", modified)
	}
	_ = reg2.Unregister()
	if len(removed) != 1 || removed[0] != "second" {
		t.Fatalf("removed = %v", removed)
	}
	if tr.Size() != 1 {
		t.Fatalf("Size after removal = %d", tr.Size())
	}
}

func TestServiceTrackerFilterTransitions(t *testing.T) {
	_, app := startedApp(t)
	ctx := app.Context()
	tr, err := NewServiceTracker(ctx, "svc", "(enabled=true)", TrackerCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Open(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	reg, _ := ctx.RegisterSingle("svc", "toggling", Properties{"enabled": false})
	if tr.Size() != 0 {
		t.Fatal("disabled service tracked")
	}
	if err := reg.SetProperties(Properties{"enabled": true}); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1 {
		t.Fatal("modification into filter not tracked")
	}
	if err := reg.SetProperties(Properties{"enabled": false}); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Fatal("modification out of filter still tracked")
	}
}

func TestListenersRemovedOnBundleStop(t *testing.T) {
	f, app := startedApp(t)
	ctx := app.Context()
	fired := 0
	if _, err := ctx.AddServiceListener(func(ServiceEvent) { fired++ }, ""); err != nil {
		t.Fatal(err)
	}
	if err := app.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SystemContext().RegisterSingle("s", "svc", nil); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("listener survived bundle stop")
	}
}

func TestSystemContextCanRegister(t *testing.T) {
	f := newTestFramework(t, nil)
	reg, err := f.SystemContext().RegisterSingle("sys.svc", 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := reg.Reference()
	if ref.Bundle() != f.SystemBundle() {
		t.Fatal("owner should be the system bundle")
	}
	svc, err := f.SystemContext().GetService(ref)
	if err != nil || svc != 42 {
		t.Fatalf("GetService = %v, %v", svc, err)
	}
}
