package module

import (
	"errors"
	"testing"
)

func TestInstallAndLifecycle(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})

	lib := mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")

	if lib.State() != StateInstalled || app.State() != StateInstalled {
		t.Fatal("bundles should begin INSTALLED")
	}
	if lib.ID() != 1 || app.ID() != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", lib.ID(), app.ID())
	}

	mustStart(t, app)
	if app.State() != StateActive {
		t.Fatalf("app state = %v, want ACTIVE", app.State())
	}
	if lib.State() != StateResolved {
		t.Fatalf("lib state = %v, want RESOLVED (co-resolved as dependency)", lib.State())
	}
	if act.started != 1 {
		t.Fatalf("activator started %d times", act.started)
	}

	// Idempotent start.
	mustStart(t, app)
	if act.started != 1 {
		t.Fatal("restarting an ACTIVE bundle must be a no-op")
	}

	if err := app.Stop(); err != nil {
		t.Fatal(err)
	}
	if app.State() != StateResolved || act.stopped != 1 {
		t.Fatalf("after stop: state=%v stops=%d", app.State(), act.stopped)
	}

	if err := app.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if app.State() != StateUninstalled {
		t.Fatalf("state = %v, want UNINSTALLED", app.State())
	}
	if _, ok := f.GetBundle(app.ID()); ok {
		t.Fatal("uninstalled bundle still listed")
	}
}

func TestInstallErrors(t *testing.T) {
	f := newTestFramework(t, map[string]*Definition{"loc:lib": libDef()})
	mustInstall(t, f, "loc:lib")

	if _, err := f.InstallBundle("loc:lib"); !errors.Is(err, ErrDuplicateLocation) {
		t.Errorf("duplicate location error = %v", err)
	}
	if _, err := f.InstallBundle("loc:missing"); !errors.Is(err, ErrDefinitionNotFound) {
		t.Errorf("missing definition error = %v", err)
	}

	// Same symbolic name and version from a different location is refused.
	if err := f.Definitions().Add("loc:lib2", libDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InstallBundle("loc:lib2"); err == nil {
		t.Error("duplicate (bsn, version) install succeeded")
	}
}

func TestStartUnresolvableBundleFails(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{"loc:app": appDef(act)})
	app := mustInstall(t, f, "loc:app")
	err := app.Start()
	if err == nil {
		t.Fatal("starting a bundle with unsatisfied imports must fail")
	}
	var re *ResolutionError
	if !errors.As(err, &re) {
		t.Fatalf("error %v does not wrap ResolutionError", err)
	}
	if app.State() != StateInstalled {
		t.Fatalf("state = %v, want INSTALLED", app.State())
	}
	if act.started != 0 {
		t.Fatal("activator ran despite resolution failure")
	}
}

func TestActivatorStartFailure(t *testing.T) {
	act := &testActivator{failStart: true}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	app := mustInstall(t, f, "loc:app")
	mustInstall(t, f, "loc:lib")
	if err := app.Start(); err == nil {
		t.Fatal("start should propagate activator failure")
	}
	if app.State() != StateResolved {
		t.Fatalf("state after failed start = %v, want RESOLVED", app.State())
	}
	// Services registered before the failure must be cleaned up.
	refs, _ := f.SystemContext().ServiceReferences("", "")
	if len(refs) != 0 {
		t.Fatalf("leaked %d service(s) after failed start", len(refs))
	}
}

func TestActivatorStopFailureStillStops(t *testing.T) {
	act := &testActivator{failStop: true}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)
	err := app.Stop()
	if err == nil {
		t.Fatal("stop should report activator failure")
	}
	if app.State() != StateResolved {
		t.Fatalf("state = %v; a failing activator must not wedge the bundle", app.State())
	}
}

func TestBundleEvents(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	var events []BundleEventType
	f.AddBundleListener(func(ev BundleEvent) {
		if ev.Bundle.Location() == "loc:app" {
			events = append(events, ev.Type)
		}
	})
	app := mustInstall(t, f, "loc:app")
	mustInstall(t, f, "loc:lib")
	mustStart(t, app)
	if err := app.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := app.Uninstall(); err != nil {
		t.Fatal(err)
	}
	want := []BundleEventType{
		BundleInstalled, BundleResolved, BundleStarting, BundleStarted,
		BundleStopping, BundleStopped, BundleUninstalled,
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %v, want %v (all: %v)", i, events[i], want[i], events)
		}
	}
}

func TestListenerRemoval(t *testing.T) {
	f := newTestFramework(t, map[string]*Definition{"loc:lib": libDef()})
	count := 0
	h := f.AddBundleListener(func(BundleEvent) { count++ })
	mustInstall(t, f, "loc:lib")
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	h.Remove()
	h.Remove() // idempotent
	b, _ := f.GetBundleByLocation("loc:lib")
	if err := b.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("listener fired after removal: count = %d", count)
	}
}

func TestUpdateBundle(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)

	// Publish a new revision at the same location.
	newAct := &testActivator{}
	updated := appDef(newAct)
	updated.ManifestText = `Bundle-SymbolicName: com.example.app
Bundle-Version: 1.1.0
Bundle-Activator: com.example.app.Activator
Import-Package: com.example.lib
`
	if err := f.Definitions().Add("loc:app", updated); err != nil {
		t.Fatal(err)
	}
	if err := app.Update(); err != nil {
		t.Fatal(err)
	}
	if app.State() != StateActive {
		t.Fatalf("updated bundle state = %v, want ACTIVE (was active before)", app.State())
	}
	if got := app.Version().String(); got != "1.1.0" {
		t.Fatalf("version after update = %s", got)
	}
	if act.stopped != 1 || newAct.started != 1 {
		t.Fatalf("old stops=%d new starts=%d", act.stopped, newAct.started)
	}
	if app.ID() != 2 {
		t.Fatal("update must preserve the bundle id")
	}
}

func TestUninstallKeepsZombieWiringUntilRefresh(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	lib := mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)

	if err := lib.Uninstall(); err != nil {
		t.Fatal(err)
	}
	// The app still loads classes from the uninstalled exporter.
	cls, err := app.LoadClass("com.example.lib.Util")
	if err != nil {
		t.Fatalf("zombie wiring broken: %v", err)
	}
	if cls.Value != "util-v1" {
		t.Fatalf("class value = %v", cls.Value)
	}

	// After refresh the app cannot resolve and returns to INSTALLED.
	if err := f.RefreshBundles(); err == nil {
		t.Fatal("refresh should report the now-unresolvable app")
	}
	if app.State() != StateInstalled {
		t.Fatalf("app state after refresh = %v, want INSTALLED", app.State())
	}
}

func TestRefreshRestartsActiveBundles(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)

	if err := f.RefreshBundles(); err != nil {
		t.Fatal(err)
	}
	if app.State() != StateActive {
		t.Fatalf("state = %v, want ACTIVE after refresh", app.State())
	}
	if act.started != 2 || act.stopped != 1 {
		t.Fatalf("starts=%d stops=%d, want 2/1", act.started, act.stopped)
	}
}

func TestStartLevels(t *testing.T) {
	actA, actB := &testActivator{}, &testActivator{}
	defA := defFor("Bundle-SymbolicName: a\nBundle-Version: 1.0\nBundle-StartLevel: 2\nBundle-Activator: a.Act\n", nil)
	defA.NewActivator = func() Activator { return actA }
	defB := defFor("Bundle-SymbolicName: b\nBundle-Version: 1.0\nBundle-StartLevel: 5\nBundle-Activator: b.Act\n", nil)
	defB.NewActivator = func() Activator { return actB }

	reg := NewDefinitionRegistry()
	reg.MustAdd("loc:a", defA)
	reg.MustAdd("loc:b", defB)
	f := New(WithDefinitions(reg), WithStartLevel(1))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	a := mustInstall(t, f, "loc:a")
	b := mustInstall(t, f, "loc:b")

	// Mark both persistently started; levels above framework level defer.
	mustStart(t, a)
	mustStart(t, b)
	if a.State() == StateActive || b.State() == StateActive {
		t.Fatal("bundles above the framework start level must not run")
	}

	if err := f.SetStartLevel(2); err != nil {
		t.Fatal(err)
	}
	if a.State() != StateActive {
		t.Fatalf("a state = %v at level 2", a.State())
	}
	if b.State() == StateActive {
		t.Fatal("b started too early")
	}

	if err := f.SetStartLevel(5); err != nil {
		t.Fatal(err)
	}
	if b.State() != StateActive {
		t.Fatalf("b state = %v at level 5", b.State())
	}

	if err := f.SetStartLevel(1); err != nil {
		t.Fatal(err)
	}
	if a.State() == StateActive || b.State() == StateActive {
		t.Fatal("bundles above the lowered level must stop")
	}
	if actA.started != 1 || actA.stopped != 1 {
		t.Fatalf("actA starts=%d stops=%d", actA.started, actA.stopped)
	}

	// Raising the level again restarts them (persistent intent retained).
	if err := f.SetStartLevel(5); err != nil {
		t.Fatal(err)
	}
	if a.State() != StateActive || b.State() != StateActive {
		t.Fatal("persistently started bundles must restart when level rises")
	}
}

func TestFrameworkStopStopsBundlesInReverseOrder(t *testing.T) {
	var order []string
	mk := func(name string) *Definition {
		d := defFor("Bundle-SymbolicName: "+name+"\nBundle-Version: 1.0\nBundle-Activator: x.Act\n", nil)
		d.NewActivator = func() Activator {
			return &testActivator{onStop: func(*Context) error {
				order = append(order, name)
				return nil
			}}
		}
		return d
	}
	f := newTestFramework(t, map[string]*Definition{
		"loc:first":  mk("first"),
		"loc:second": mk("second"),
	})
	first := mustInstall(t, f, "loc:first")
	second := mustInstall(t, f, "loc:second")
	mustStart(t, first)
	mustStart(t, second)
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateResolved {
		t.Fatalf("framework state = %v", f.State())
	}
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("stop order = %v, want [second first]", order)
	}
}

func TestCannotUninstallSystemBundle(t *testing.T) {
	f := newTestFramework(t, nil)
	if err := f.SystemBundle().Uninstall(); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("err = %v", err)
	}
}

func TestContextInvalidAfterStop(t *testing.T) {
	act := &testActivator{}
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	})
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)
	ctx := app.Context()
	if ctx == nil {
		t.Fatal("active bundle has nil context")
	}
	if err := app.Stop(); err != nil {
		t.Fatal(err)
	}
	if app.Context() != nil {
		t.Fatal("context must be nil after stop")
	}
	if _, err := ctx.RegisterSingle("x", "svc", nil); !errors.Is(err, ErrInvalidState) {
		t.Fatalf("stale context use error = %v", err)
	}
}

func TestFrameworkEventsOnStartStop(t *testing.T) {
	reg := NewDefinitionRegistry()
	f := New(WithDefinitions(reg))
	var events []FrameworkEventType
	f.AddFrameworkListener(func(ev FrameworkEvent) { events = append(events, ev.Type) })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	var sawStarted, sawStopped bool
	for _, e := range events {
		switch e {
		case FrameworkStarted:
			sawStarted = true
		case FrameworkStopped:
			sawStopped = true
		}
	}
	if !sawStarted || !sawStopped {
		t.Fatalf("events = %v", events)
	}
}

func TestNestedLifecycleFromListener(t *testing.T) {
	// A bundle listener reacting to STARTED by starting another bundle
	// must not deadlock or corrupt event order.
	actA, actB := &testActivator{}, &testActivator{}
	defA := appDef(actA)
	defB := defFor(`Bundle-SymbolicName: com.example.b
Bundle-Version: 1.0.0
Bundle-Activator: b.Act
`, nil)
	defB.NewActivator = func() Activator { return actB }
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(actA),
		"loc:b":   defB,
	})
	_ = defA
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	b := mustInstall(t, f, "loc:b")
	f.AddBundleListener(func(ev BundleEvent) {
		if ev.Type == BundleStarted && ev.Bundle == app {
			if err := b.Start(); err != nil {
				t.Errorf("nested start: %v", err)
			}
		}
	})
	mustStart(t, app)
	if b.State() != StateActive {
		t.Fatalf("b state = %v, want ACTIVE via listener", b.State())
	}
}

func TestBundleDataArea(t *testing.T) {
	f := newTestFramework(t, map[string]*Definition{"loc:lib": libDef()})
	lib := mustInstall(t, f, "loc:lib")
	if err := lib.DataPut("state.json", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	got, ok := lib.DataGet("state.json")
	if !ok || string(got) != `{"n":1}` {
		t.Fatalf("DataGet = %q, %v", got, ok)
	}
	// Mutating the returned slice must not affect stored data.
	got[0] = 'X'
	again, _ := lib.DataGet("state.json")
	if string(again) != `{"n":1}` {
		t.Fatal("data area aliased caller slice")
	}
	names := lib.DataNames()
	if len(names) != 1 || names[0] != "state.json" {
		t.Fatalf("DataNames = %v", names)
	}
	lib.DataDelete("state.json")
	if _, ok := lib.DataGet("state.json"); ok {
		t.Fatal("delete failed")
	}
}

func TestGetBundleBySymbolicNamePicksHighestVersion(t *testing.T) {
	lib2 := defFor(`Bundle-SymbolicName: com.example.lib
Bundle-Version: 2.0.0
Export-Package: com.example.lib;version="2.0"
`, map[string]any{"com.example.lib.Util": "util-v2"})
	f := newTestFramework(t, map[string]*Definition{
		"loc:lib":  libDef(),
		"loc:lib2": lib2,
	})
	mustInstall(t, f, "loc:lib")
	mustInstall(t, f, "loc:lib2")
	b, ok := f.GetBundleBySymbolicName("com.example.lib")
	if !ok || b.Version().String() != "2.0.0" {
		t.Fatalf("got %v, ok=%v", b, ok)
	}
}
