package module

import (
	"fmt"

	"dosgi/internal/filter"
)

// Context is a bundle's execution context, the analog of
// org.osgi.framework.BundleContext: every interaction between a bundle and
// its framework flows through it.
type Context struct {
	bundle *Bundle
	fw     *Framework
}

// Bundle returns the bundle this context belongs to.
func (c *Context) Bundle() *Bundle { return c.bundle }

// Framework returns the owning framework.
func (c *Context) Framework() *Framework { return c.fw }

// Property returns a framework property.
func (c *Context) Property(key string) string { return c.fw.Property(key) }

// InstallBundle installs the definition registered under location.
func (c *Context) InstallBundle(location string) (*Bundle, error) {
	if err := c.valid(); err != nil {
		return nil, err
	}
	return c.fw.InstallBundle(location)
}

// Bundles returns all installed bundles.
func (c *Context) Bundles() []*Bundle { return c.fw.Bundles() }

// GetBundle returns the bundle with the given id.
func (c *Context) GetBundle(id BundleID) (*Bundle, bool) { return c.fw.GetBundle(id) }

// RegisterService publishes svc under one or more class names.
func (c *Context) RegisterService(classes []string, svc any, props Properties) (*ServiceRegistration, error) {
	if err := c.valid(); err != nil {
		return nil, err
	}
	return c.fw.registry.register(c.bundle, classes, svc, props)
}

// RegisterSingle publishes svc under a single class name.
func (c *Context) RegisterSingle(class string, svc any, props Properties) (*ServiceRegistration, error) {
	return c.RegisterService([]string{class}, svc, props)
}

// ServiceReferences returns live references matching class (empty = any)
// and the optional LDAP filter expression, best-ranked first.
func (c *Context) ServiceReferences(class, filterExpr string) ([]*ServiceReference, error) {
	var flt *filter.Filter
	if filterExpr != "" {
		var err error
		if flt, err = filter.Parse(filterExpr); err != nil {
			return nil, err
		}
	}
	return c.fw.registry.references(class, flt), nil
}

// ServiceReference returns the best reference for class, or false.
func (c *Context) ServiceReference(class string) (*ServiceReference, bool) {
	refs := c.fw.registry.references(class, nil)
	if len(refs) == 0 {
		return nil, false
	}
	return refs[0], true
}

// GetService acquires the service behind ref, incrementing this bundle's
// use count.
func (c *Context) GetService(ref *ServiceReference) (any, error) {
	if err := c.valid(); err != nil {
		return nil, err
	}
	return c.fw.registry.getService(c.bundle, ref)
}

// UngetService releases one use of ref.
func (c *Context) UngetService(ref *ServiceReference) bool {
	return c.fw.registry.ungetService(c.bundle, ref)
}

// AddServiceListener subscribes to service events, optionally filtered.
// The listener is removed automatically when the bundle stops.
func (c *Context) AddServiceListener(l ServiceListener, filterExpr string) (*ListenerHandle, error) {
	if err := c.valid(); err != nil {
		return nil, err
	}
	return c.fw.registry.addListener(c.bundle, l, filterExpr)
}

// AddBundleListener subscribes to bundle lifecycle events.
func (c *Context) AddBundleListener(l BundleListener) *ListenerHandle {
	return c.fw.AddBundleListener(l)
}

// AddFrameworkListener subscribes to framework events.
func (c *Context) AddFrameworkListener(l FrameworkListener) *ListenerHandle {
	return c.fw.AddFrameworkListener(l)
}

// valid reports whether the context may still be used.
func (c *Context) valid() error {
	if c == nil || c.bundle == nil {
		return fmt.Errorf("%w: nil context", ErrInvalidState)
	}
	st := c.bundle.State()
	if c.bundle.isSystem() {
		if st == StateUninstalled {
			return ErrUninstalled
		}
		return nil
	}
	switch st {
	case StateStarting, StateActive, StateStopping:
		return nil
	default:
		return fmt.Errorf("%w: bundle %s context used while %s", ErrInvalidState, c.bundle.location, st)
	}
}
