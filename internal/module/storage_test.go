package module

import (
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	act := &testActivator{}
	defs := map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(act),
	}
	f := newTestFramework(t, defs)
	mustInstall(t, f, "loc:lib")
	app := mustInstall(t, f, "loc:app")
	mustStart(t, app)
	if err := app.DataPut("counter", []byte("41")); err != nil {
		t.Fatal(err)
	}
	f.SetProperty("zone", "eu-west")
	f.SetExtension("instances", []byte(`["tenant-a"]`))

	snap := f.Snapshot()
	encoded, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(encoded)
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a brand-new framework, same definition registry (the
	// "JARs on the SAN").
	reg := NewDefinitionRegistry()
	for loc, d := range defs {
		reg.MustAdd(loc, d)
	}
	f2, err := NewFromSnapshot(decoded, WithDefinitions(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Start(); err != nil {
		t.Fatal(err)
	}

	app2, ok := f2.GetBundleByLocation("loc:app")
	if !ok {
		t.Fatal("app missing after restore")
	}
	if app2.State() != StateActive {
		t.Fatalf("restored app state = %v, want ACTIVE (persistent start)", app2.State())
	}
	if app2.ID() != app.ID() {
		t.Fatalf("bundle id changed: %d -> %d", app.ID(), app2.ID())
	}
	lib2, ok := f2.GetBundleByLocation("loc:lib")
	if !ok {
		t.Fatal("lib missing after restore")
	}
	if lib2.State() != StateResolved {
		t.Fatalf("restored lib state = %v (was never started)", lib2.State())
	}
	data, ok := app2.DataGet("counter")
	if !ok || string(data) != "41" {
		t.Fatalf("data area lost: %q, %v", data, ok)
	}
	if f2.Property("zone") != "eu-west" {
		t.Fatal("framework property lost")
	}
	ext, ok := f2.Extension("instances")
	if !ok || string(ext) != `["tenant-a"]` {
		t.Fatalf("extension lost: %q, %v", ext, ok)
	}
	// Activator really ran on the restored framework.
	if act.started != 2 {
		t.Fatalf("activator starts = %d, want 2 (original + restored)", act.started)
	}
}

func TestSnapshotNextBundleIDPreserved(t *testing.T) {
	defs := map[string]*Definition{"loc:lib": libDef()}
	f := newTestFramework(t, defs)
	lib := mustInstall(t, f, "loc:lib")
	if err := lib.Uninstall(); err != nil {
		t.Fatal(err)
	}
	// lib consumed id 1; next is 2 even though nothing is installed.
	snap := f.Snapshot()

	reg := NewDefinitionRegistry()
	reg.MustAdd("loc:lib", libDef())
	f2, err := NewFromSnapshot(snap, WithDefinitions(reg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f2.InstallBundle("loc:lib")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() != 2 {
		t.Fatalf("id = %d, want 2 (ids are never recycled)", b.ID())
	}
}

func TestRestoreWithMissingDefinition(t *testing.T) {
	defs := map[string]*Definition{
		"loc:lib": libDef(),
		"loc:app": appDef(&testActivator{}),
	}
	f := newTestFramework(t, defs)
	mustInstall(t, f, "loc:lib")
	mustInstall(t, f, "loc:app")
	snap := f.Snapshot()

	// Only lib's definition is available at the restore site.
	reg := NewDefinitionRegistry()
	reg.MustAdd("loc:lib", libDef())
	f2, err := NewFromSnapshot(snap, WithDefinitions(reg))
	if err == nil {
		t.Fatal("restore with missing definition must report an error")
	}
	if f2 == nil {
		t.Fatal("partial restore must still return the framework")
	}
	if _, ok := f2.GetBundleByLocation("loc:lib"); !ok {
		t.Fatal("restorable bundle was dropped")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	f := newTestFramework(t, map[string]*Definition{"loc:lib": libDef()})
	lib := mustInstall(t, f, "loc:lib")
	if err := lib.DataPut("k", []byte("original")); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot()
	snap.Bundles[0].Data["k"][0] = 'X'
	got, _ := lib.DataGet("k")
	if string(got) != "original" {
		t.Fatal("snapshot aliases live bundle data")
	}
}

func TestStartLevelPersisted(t *testing.T) {
	defs := map[string]*Definition{"loc:lib": libDef()}
	reg := NewDefinitionRegistry()
	reg.MustAdd("loc:lib", libDef())
	f := New(WithDefinitions(reg), WithStartLevel(7))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	lib := mustInstall(t, f, "loc:lib")
	if err := lib.SetStartLevel(4); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot()
	if snap.StartLevel != 7 {
		t.Fatalf("snapshot start level = %d", snap.StartLevel)
	}

	reg2 := NewDefinitionRegistry()
	for loc, d := range defs {
		reg2.MustAdd(loc, d)
	}
	f2, err := NewFromSnapshot(snap, WithDefinitions(reg2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Start(); err != nil {
		t.Fatal(err)
	}
	if f2.StartLevel() != 7 {
		t.Fatalf("restored framework level = %d", f2.StartLevel())
	}
	lib2, _ := f2.GetBundleByLocation("loc:lib")
	if lib2.StartLevel() != 4 {
		t.Fatalf("restored bundle level = %d", lib2.StartLevel())
	}
}
