package module

import (
	"sort"
	"sync"

	"dosgi/internal/filter"
)

// TrackerCallbacks customize a ServiceTracker. All callbacks are optional.
type TrackerCallbacks struct {
	Added    func(ref *ServiceReference, svc any)
	Modified func(ref *ServiceReference, svc any)
	Removed  func(ref *ServiceReference, svc any)
}

// ServiceTracker follows the set of services matching a class and an
// optional filter, maintaining acquired service objects and firing
// callbacks as services come and go — the standard OSGi utility on which
// the platform's modules rely to stay decoupled.
type ServiceTracker struct {
	ctx   *Context
	class string
	flt   *filter.Filter
	cbs   TrackerCallbacks

	mu      sync.Mutex
	open    bool
	tracked map[*ServiceReference]any
	handle  *ListenerHandle
}

// NewServiceTracker builds a tracker over ctx for class (empty = any) and
// the optional filter expression.
func NewServiceTracker(ctx *Context, class, filterExpr string, cbs TrackerCallbacks) (*ServiceTracker, error) {
	var flt *filter.Filter
	if filterExpr != "" {
		var err error
		if flt, err = filter.Parse(filterExpr); err != nil {
			return nil, err
		}
	}
	return &ServiceTracker{
		ctx:     ctx,
		class:   class,
		flt:     flt,
		cbs:     cbs,
		tracked: make(map[*ServiceReference]any),
	}, nil
}

// Open starts tracking: existing matches are added, then events keep the
// set current.
func (t *ServiceTracker) Open() error {
	t.mu.Lock()
	if t.open {
		t.mu.Unlock()
		return nil
	}
	t.open = true
	t.mu.Unlock()

	handle, err := t.ctx.AddServiceListener(t.onEvent, "")
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.handle = handle
	t.mu.Unlock()

	refs := t.ctx.fw.registry.references(t.class, t.flt)
	for _, ref := range refs {
		t.track(ref)
	}
	return nil
}

// Close stops tracking and releases every acquired service.
func (t *ServiceTracker) Close() {
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		return
	}
	t.open = false
	handle := t.handle
	t.handle = nil
	tracked := t.tracked
	t.tracked = make(map[*ServiceReference]any)
	t.mu.Unlock()

	handle.Remove()
	for ref, svc := range tracked {
		t.ctx.UngetService(ref)
		if t.cbs.Removed != nil {
			t.cbs.Removed(ref, svc)
		}
	}
}

// GetService returns the best-ranked tracked service, or nil.
func (t *ServiceTracker) GetService() any {
	ref, svc := t.bestLocked()
	_ = ref
	return svc
}

// GetReference returns the best-ranked tracked reference, or nil.
func (t *ServiceTracker) GetReference() *ServiceReference {
	ref, _ := t.bestLocked()
	return ref
}

func (t *ServiceTracker) bestLocked() (*ServiceReference, any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best *ServiceReference
	for ref := range t.tracked {
		if best == nil {
			best = ref
			continue
		}
		if ref.reg.ranking > best.reg.ranking ||
			(ref.reg.ranking == best.reg.ranking && ref.reg.id < best.reg.id) {
			best = ref
		}
	}
	if best == nil {
		return nil, nil
	}
	return best, t.tracked[best]
}

// Size returns the number of tracked services.
func (t *ServiceTracker) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tracked)
}

// References returns the tracked references sorted by ranking then id.
func (t *ServiceTracker) References() []*ServiceReference {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*ServiceReference, 0, len(t.tracked))
	for ref := range t.tracked {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].reg.ranking != out[j].reg.ranking {
			return out[i].reg.ranking > out[j].reg.ranking
		}
		return out[i].reg.id < out[j].reg.id
	})
	return out
}

func (t *ServiceTracker) matches(ref *ServiceReference) bool {
	if t.class != "" && !containsString(ref.reg.classes, t.class) {
		return false
	}
	if t.flt != nil && !t.flt.Matches(ref.Properties()) {
		return false
	}
	return true
}

func (t *ServiceTracker) onEvent(ev ServiceEvent) {
	switch ev.Type {
	case ServiceRegistered:
		if t.matches(ev.Reference) {
			t.track(ev.Reference)
		}
	case ServiceModified:
		t.mu.Lock()
		_, known := t.tracked[ev.Reference]
		t.mu.Unlock()
		nowMatches := t.matches(ev.Reference)
		switch {
		case known && !nowMatches:
			t.untrack(ev.Reference)
		case !known && nowMatches:
			t.track(ev.Reference)
		case known && nowMatches:
			t.mu.Lock()
			svc := t.tracked[ev.Reference]
			t.mu.Unlock()
			if t.cbs.Modified != nil {
				t.cbs.Modified(ev.Reference, svc)
			}
		}
	case ServiceUnregistering:
		t.untrack(ev.Reference)
	}
}

func (t *ServiceTracker) track(ref *ServiceReference) {
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		return
	}
	if _, dup := t.tracked[ref]; dup {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	svc, err := t.ctx.GetService(ref)
	if err != nil || svc == nil {
		return
	}
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		t.ctx.UngetService(ref)
		return
	}
	t.tracked[ref] = svc
	t.mu.Unlock()
	if t.cbs.Added != nil {
		t.cbs.Added(ref, svc)
	}
}

func (t *ServiceTracker) untrack(ref *ServiceReference) {
	t.mu.Lock()
	svc, known := t.tracked[ref]
	if known {
		delete(t.tracked, ref)
	}
	t.mu.Unlock()
	if !known {
		return
	}
	t.ctx.UngetService(ref)
	if t.cbs.Removed != nil {
		t.cbs.Removed(ref, svc)
	}
}
