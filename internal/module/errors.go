package module

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by framework operations.
var (
	// ErrBundleNotFound is returned when a bundle id or location is unknown.
	ErrBundleNotFound = errors.New("module: bundle not found")
	// ErrDuplicateLocation is returned when installing a location twice.
	ErrDuplicateLocation = errors.New("module: bundle location already installed")
	// ErrInvalidState is returned when an operation is illegal in the
	// bundle's or framework's current state.
	ErrInvalidState = errors.New("module: invalid state for operation")
	// ErrServiceGone is returned when using a service reference whose
	// registration has been unregistered.
	ErrServiceGone = errors.New("module: service has been unregistered")
	// ErrUninstalled is returned for operations on uninstalled bundles.
	ErrUninstalled = errors.New("module: bundle is uninstalled")
	// ErrNoActivator is returned when a manifest names an activator class
	// that the definition does not provide.
	ErrNoActivator = errors.New("module: activator class not found in definition")
	// ErrDefinitionNotFound is returned when no bundle definition exists
	// for an install location.
	ErrDefinitionNotFound = errors.New("module: no definition for location")
)

// ResolutionError reports why one or more bundles could not be resolved.
type ResolutionError struct {
	// Unresolvable maps bundle symbolic names to the reason resolution
	// failed.
	Unresolvable map[string]string
}

func (e *ResolutionError) Error() string {
	return fmt.Sprintf("module: resolution failed for %d bundle(s): %v", len(e.Unresolvable), e.Unresolvable)
}

// ClassNotFoundError reports a failed class lookup, mirroring
// java.lang.ClassNotFoundException.
type ClassNotFoundError struct {
	Class  string
	Bundle string // symbolic name of the requesting bundle
}

func (e *ClassNotFoundError) Error() string {
	return fmt.Sprintf("module: class %s not found from bundle %s", e.Class, e.Bundle)
}

// IsClassNotFound reports whether err is a ClassNotFoundError.
func IsClassNotFound(err error) bool {
	var cnf *ClassNotFoundError
	return errors.As(err, &cnf)
}
