package module

import (
	"fmt"
	"sort"

	"dosgi/internal/manifest"
)

// Wiring records how a resolved bundle's dependencies were satisfied.
type Wiring struct {
	// imports maps package name -> exporting bundle for each Import-Package
	// clause that was wired (optional imports may be absent).
	imports map[string]*Bundle
	// requires lists the bundles wired via Require-Bundle.
	requires []*Bundle
	// dynamic maps package name -> exporting bundle for wires established
	// lazily through DynamicImport-Package.
	dynamic map[string]*Bundle
}

// ImportedFrom returns the bundle that exports pkg to this wiring, if any.
func (w *Wiring) ImportedFrom(pkg string) (*Bundle, bool) {
	if w == nil {
		return nil, false
	}
	if b, ok := w.imports[pkg]; ok {
		return b, true
	}
	if b, ok := w.dynamic[pkg]; ok {
		return b, true
	}
	return nil, false
}

// Imports returns the statically wired package names, sorted.
func (w *Wiring) Imports() []string {
	if w == nil {
		return nil
	}
	out := make([]string, 0, len(w.imports))
	for p := range w.imports {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Requires returns the bundles wired via Require-Bundle.
func (w *Wiring) Requires() []*Bundle {
	if w == nil {
		return nil
	}
	out := make([]*Bundle, len(w.requires))
	copy(out, w.requires)
	return out
}

// exportCandidate is one exported package available during resolution.
type exportCandidate struct {
	pkg      manifest.ExportedPackage
	exporter *Bundle
	resolved bool // exporter is already resolved (preferred)
}

// resolveAllLocked co-resolves every INSTALLED bundle. Callers must hold
// f.mu. Bundles that cannot resolve stay INSTALLED and are reported in the
// returned *ResolutionError; resolvable bundles commit regardless.
func (f *Framework) resolveAllLocked() error {
	var candidates []*Bundle
	for _, b := range f.bundlesLocked() {
		if b.state == StateInstalled {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return nil
	}

	failures := make(map[string]string)
	for {
		wirings, failed := f.tryResolve(candidates)
		if len(failed) == 0 {
			for b, w := range wirings {
				b.wiring = w
				b.state = StateResolved
				f.queueBundleEvent(BundleEvent{Type: BundleResolved, Bundle: b})
			}
			break
		}
		// Remove failed bundles and retry with the remainder, because other
		// candidates may have depended on the failures' exports.
		next := candidates[:0]
		for _, b := range candidates {
			if reason, bad := failed[b]; bad {
				failures[b.manifest.SymbolicName] = reason
			} else {
				next = append(next, b)
			}
		}
		candidates = next
		if len(candidates) == 0 {
			break
		}
	}
	if len(failures) > 0 {
		return &ResolutionError{Unresolvable: failures}
	}
	return nil
}

// tryResolve attempts to wire every candidate simultaneously, allowing
// imports to be satisfied by other members of the candidate set
// (co-resolution handles dependency cycles). It returns per-bundle wirings
// and the set of candidates that failed with reasons.
func (f *Framework) tryResolve(candidates []*Bundle) (map[*Bundle]*Wiring, map[*Bundle]string) {
	index := f.buildExportIndex(candidates)
	wirings := make(map[*Bundle]*Wiring, len(candidates))
	failed := make(map[*Bundle]string)

	for _, b := range candidates {
		w := &Wiring{imports: map[string]*Bundle{}, dynamic: map[string]*Bundle{}}
		for _, imp := range b.manifest.Imports {
			exp, ok := chooseExporter(index[imp.Name], imp.Range, b)
			if !ok {
				if imp.Optional {
					continue
				}
				failed[b] = fmt.Sprintf("no exporter for package %s %s", imp.Name, imp.Range)
				break
			}
			w.imports[imp.Name] = exp
		}
		if _, bad := failed[b]; bad {
			continue
		}
		for _, req := range b.manifest.Requires {
			rb, ok := f.chooseRequiredBundle(req, candidates)
			if !ok {
				if req.Optional {
					continue
				}
				failed[b] = fmt.Sprintf("no bundle %s %s", req.SymbolicName, req.Range)
				break
			}
			w.requires = append(w.requires, rb)
		}
		if _, bad := failed[b]; bad {
			continue
		}
		wirings[b] = w
	}

	// Class-space consistency (uses constraints): if bundle b is wired to
	// exporter E for package P, and E's export of P uses package U, then
	// b's provider of U must be the same as E's provider of U whenever b
	// has one.
	for b, w := range wirings {
		if reason, ok := usesConflict(b, w, wirings); ok {
			failed[b] = reason
			delete(wirings, b)
		}
	}
	return wirings, failed
}

// buildExportIndex indexes every exported package from resolved bundles and
// the candidate set.
func (f *Framework) buildExportIndex(candidates []*Bundle) map[string][]exportCandidate {
	index := make(map[string][]exportCandidate)
	add := func(b *Bundle, resolved bool) {
		for _, exp := range b.manifest.Exports {
			index[exp.Name] = append(index[exp.Name], exportCandidate{pkg: exp, exporter: b, resolved: resolved})
		}
	}
	for _, b := range f.bundlesLocked() {
		if b.state == StateResolved || b.state == StateActive || b.state == StateStarting || b.state == StateStopping {
			add(b, true)
		}
	}
	// Zombie (uninstalled but unrefreshed) bundles keep exporting.
	for _, b := range f.zombies {
		add(b, true)
	}
	for _, b := range candidates {
		add(b, false)
	}
	return index
}

// chooseExporter picks the best candidate per OSGi preference: an already
// resolved exporter first, then highest version, then lowest bundle id. A
// bundle that both imports and exports a package prefers itself
// (substitutable exports resolve to the local copy when versions allow).
func chooseExporter(cands []exportCandidate, r manifest.VersionRange, importer *Bundle) (*Bundle, bool) {
	var best *exportCandidate
	for i := range cands {
		c := &cands[i]
		if !r.Includes(c.pkg.Version) {
			continue
		}
		if best == nil || betterExport(c, best, importer) {
			best = c
		}
	}
	if best == nil {
		return nil, false
	}
	return best.exporter, true
}

func betterExport(a, b *exportCandidate, importer *Bundle) bool {
	if a.resolved != b.resolved {
		return a.resolved
	}
	if c := a.pkg.Version.Compare(b.pkg.Version); c != 0 {
		return c > 0
	}
	// Self-preference at equal version.
	if (a.exporter == importer) != (b.exporter == importer) {
		return a.exporter == importer
	}
	return a.exporter.id < b.exporter.id
}

// chooseRequiredBundle picks the highest-version matching bundle among
// resolved bundles and candidates.
func (f *Framework) chooseRequiredBundle(req manifest.RequiredBundle, candidates []*Bundle) (*Bundle, bool) {
	var best *Bundle
	consider := func(b *Bundle) {
		if b.manifest.SymbolicName != req.SymbolicName || !req.Range.Includes(b.manifest.Version) {
			return
		}
		if best == nil || b.manifest.Version.Compare(best.manifest.Version) > 0 {
			best = b
		}
	}
	for _, b := range f.bundlesLocked() {
		if b.state == StateResolved || b.state == StateActive {
			consider(b)
		}
	}
	for _, b := range candidates {
		consider(b)
	}
	return best, best != nil
}

// usesConflict checks single-level uses constraints for b's tentative
// wiring w. tentative supplies the wirings of other co-resolving bundles.
func usesConflict(b *Bundle, w *Wiring, tentative map[*Bundle]*Wiring) (string, bool) {
	providerOf := func(bundle *Bundle, wiring *Wiring, pkg string) (*Bundle, bool) {
		if wiring != nil {
			if p, ok := wiring.imports[pkg]; ok {
				return p, true
			}
		}
		if _, ok := bundle.manifest.ExportsPackage(pkg); ok {
			return bundle, true
		}
		return nil, false
	}
	for pkg, exporter := range w.imports {
		clause, ok := exporter.manifest.ExportsPackage(pkg)
		if !ok {
			continue
		}
		exporterWiring := exporter.wiring
		if tw, isTentative := tentative[exporter]; isTentative {
			exporterWiring = tw
		}
		for _, used := range clause.Uses {
			expProvider, expHas := providerOf(exporter, exporterWiring, used)
			if !expHas {
				continue
			}
			myProvider, myHas := providerOf(b, w, used)
			if myHas && myProvider != expProvider {
				return fmt.Sprintf("uses conflict on package %s: %s supplies it via %s but importer uses %s",
					used, exporter.manifest.SymbolicName,
					expProvider.manifest.SymbolicName, myProvider.manifest.SymbolicName), true
			}
		}
	}
	return "", false
}

// resolveDynamicImport attempts to wire pkg lazily for b against the
// currently resolved exporters, per DynamicImport-Package. Callers must
// hold f.mu.
func (f *Framework) resolveDynamicImport(b *Bundle, pkg string) (*Bundle, bool) {
	if b.wiring == nil {
		return nil, false
	}
	matched := false
	for _, pattern := range b.manifest.DynamicImports {
		if manifest.MatchesPattern(pattern, pkg) {
			matched = true
			break
		}
	}
	if !matched {
		return nil, false
	}
	index := f.buildExportIndex(nil)
	exp, ok := chooseExporter(index[pkg], manifest.AnyVersion, b)
	if !ok {
		return nil, false
	}
	b.wiring.dynamic[pkg] = exp
	return exp, true
}
