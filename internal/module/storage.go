package module

import (
	"encoding/json"
	"fmt"
	"sort"
)

// BundleSnapshot is the persisted form of one bundle: identity, start
// intent and private data area. Definitions themselves are not persisted —
// they are re-read from the definition registry at restore time, exactly as
// OSGi re-reads bundle JARs from their location on restart.
type BundleSnapshot struct {
	ID         int64             `json:"id"`
	Location   string            `json:"location"`
	StartLevel int               `json:"startLevel"`
	Started    bool              `json:"started"`
	Data       map[string][]byte `json:"data,omitempty"`
}

// Snapshot is the persisted framework state required by the OSGi spec
// ("the framework state shall be persistent across framework reboots",
// §3.2 of the paper). The Migration Module ships snapshots through the SAN
// to redeploy virtual instances on other nodes.
type Snapshot struct {
	Name         string            `json:"name"`
	NextBundleID int64             `json:"nextBundleId"`
	StartLevel   int               `json:"startLevel"`
	Properties   map[string]string `json:"properties,omitempty"`
	Bundles      []BundleSnapshot  `json:"bundles"`
	// Extensions carries opaque embedder state (e.g. the instance
	// manager's instance descriptors) so it travels with the framework.
	Extensions map[string][]byte `json:"extensions,omitempty"`
}

// Encode serializes the snapshot.
func (s *Snapshot) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSnapshot parses an encoded snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("module: decoding snapshot: %w", err)
	}
	return &s, nil
}

// Snapshot captures the framework's persistent state: installed bundles,
// their start intent and data areas, framework properties and embedder
// extensions.
func (f *Framework) Snapshot() *Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := &Snapshot{
		Name:         f.name,
		NextBundleID: int64(f.nextID),
		StartLevel:   f.targetStartLevel,
		Properties:   make(map[string]string, len(f.props)),
		Extensions:   make(map[string][]byte, len(f.snapshotExtender)),
	}
	for k, v := range f.props {
		snap.Properties[k] = v
	}
	for k, v := range f.snapshotExtender {
		cp := make([]byte, len(v))
		copy(cp, v)
		snap.Extensions[k] = cp
	}
	for _, b := range f.bundlesLocked() {
		if b.isSystem() {
			continue
		}
		bs := BundleSnapshot{
			ID:         int64(b.id),
			Location:   b.location,
			StartLevel: b.startLevel,
			Started:    b.persistentlyStarted,
			Data:       make(map[string][]byte, len(b.data)),
		}
		for name, content := range b.data {
			cp := make([]byte, len(content))
			copy(cp, content)
			bs.Data[name] = cp
		}
		snap.Bundles = append(snap.Bundles, bs)
	}
	return snap
}

// SetExtension stores opaque embedder state that travels with snapshots.
func (f *Framework) SetExtension(key string, value []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if value == nil {
		delete(f.snapshotExtender, key)
		return
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	f.snapshotExtender[key] = cp
}

// Extension reads opaque embedder state.
func (f *Framework) Extension(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.snapshotExtender[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

// NewFromSnapshot reconstructs a framework from persisted state. Bundle
// definitions are re-read from the definition registry supplied via
// options; locations whose definitions have disappeared are reported as an
// error after restoring everything else. Call Start to resume: persistently
// started bundles restart automatically, which is precisely the mechanism
// the Migration Module uses to redeploy an instance on another node.
func NewFromSnapshot(snap *Snapshot, opts ...Option) (*Framework, error) {
	opts = append([]Option{WithName(snap.Name), WithStartLevel(snap.StartLevel)}, opts...)
	f := New(opts...)
	for k, v := range snap.Properties {
		f.SetProperty(k, v)
	}
	for k, v := range snap.Extensions {
		f.SetExtension(k, v)
	}

	ordered := make([]BundleSnapshot, len(snap.Bundles))
	copy(ordered, snap.Bundles)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	var missing []string
	for _, bs := range ordered {
		f.mu.Lock()
		f.nextID = BundleID(bs.ID)
		f.mu.Unlock()
		b, err := f.InstallBundle(bs.Location)
		if err != nil {
			missing = append(missing, fmt.Sprintf("%s: %v", bs.Location, err))
			continue
		}
		f.mu.Lock()
		b.startLevel = bs.StartLevel
		b.persistentlyStarted = bs.Started
		b.data = make(map[string][]byte, len(bs.Data))
		for name, content := range bs.Data {
			cp := make([]byte, len(content))
			copy(cp, content)
			b.data[name] = cp
		}
		f.mu.Unlock()
	}
	f.mu.Lock()
	if next := BundleID(snap.NextBundleID); f.nextID < next {
		f.nextID = next
	}
	f.mu.Unlock()
	if len(missing) > 0 {
		return f, fmt.Errorf("module: restore incomplete, %d bundle(s) missing: %v", len(missing), missing)
	}
	return f, nil
}
