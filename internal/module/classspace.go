package module

import "dosgi/internal/manifest"

// loadClass implements the class-space lookup for bundle b:
//
//  1. a wired import of the class's package delegates to the exporter
//     (imported packages shadow local content, per OSGi);
//  2. the bundle's own content (private or exported packages);
//  3. DynamicImport-Package patterns, wiring lazily;
//  4. the framework's parent delegation hook (virtual frameworks only) —
//     "when searching for a given class the virtual instance undergoes the
//     normal lookup process and if this fails it checks the custom
//     classloader" (§2).
func (f *Framework) loadClass(b *Bundle, name string) (Class, error) {
	pkg := manifest.PackageOf(name)

	f.mu.Lock()
	if b.state == StateUninstalled {
		f.mu.Unlock()
		return Class{}, ErrUninstalled
	}

	// 1. Wired imports shadow local content.
	if exporter, ok := b.wiring.ImportedFrom(pkg); ok {
		cls, found := exporter.findLocalClass(name)
		f.mu.Unlock()
		if !found {
			return Class{}, &ClassNotFoundError{Class: name, Bundle: b.manifest.SymbolicName}
		}
		return cls, nil
	}

	// 2. Own content.
	if cls, ok := b.findLocalClass(name); ok {
		f.mu.Unlock()
		return cls, nil
	}

	// 3. Dynamic imports.
	if exporter, ok := f.resolveDynamicImport(b, pkg); ok {
		cls, found := exporter.findLocalClass(name)
		f.mu.Unlock()
		if found {
			return cls, nil
		}
		return Class{}, &ClassNotFoundError{Class: name, Bundle: b.manifest.SymbolicName}
	}

	// 4. Require-Bundle visibility: all exported packages of required
	// bundles are visible.
	if b.wiring != nil {
		for _, rb := range b.wiring.requires {
			if _, exports := rb.manifest.ExportsPackage(pkg); exports {
				if cls, ok := rb.findLocalClass(name); ok {
					f.mu.Unlock()
					return cls, nil
				}
			}
		}
	}

	parent := f.parent
	requester := b.manifest.SymbolicName
	f.mu.Unlock()

	// 5. Parent delegation, outside the lock (the parent framework has its
	// own lock discipline).
	if parent != nil {
		if err := f.checkPackageImport(b, pkg); err != nil {
			return Class{}, err
		}
		cls, err := parent.DelegateLoadClass(name)
		if err == nil {
			return cls, nil
		}
	}
	return Class{}, &ClassNotFoundError{Class: name, Bundle: requester}
}

// findLocalClass returns the class entry defined by the bundle itself.
// Callers must hold fw.mu (or be operating on an immutable definition).
func (b *Bundle) findLocalClass(name string) (Class, bool) {
	if b.def == nil || b.def.Classes == nil {
		return Class{}, false
	}
	v, ok := b.def.Classes[name]
	if !ok {
		return Class{}, false
	}
	return Class{Name: name, Value: v, Definer: b}, true
}

// LoadExportedClass looks a class up among the framework's resolved
// exporters of its package (highest export version wins, lowest bundle id
// breaks ties). It is the lookup a parent framework performs on behalf of a
// virtual instance's delegation request: only *exported* content is
// reachable this way.
func (f *Framework) LoadExportedClass(name string) (Class, error) {
	pkg := manifest.PackageOf(name)
	f.mu.Lock()
	index := f.buildExportIndex(nil)
	exporter, ok := chooseExporter(index[pkg], manifest.AnyVersion, nil)
	if !ok {
		f.mu.Unlock()
		return Class{}, &ClassNotFoundError{Class: name, Bundle: "parent:" + f.name}
	}
	cls, found := exporter.findLocalClass(name)
	f.mu.Unlock()
	if !found {
		return Class{}, &ClassNotFoundError{Class: name, Bundle: "parent:" + f.name}
	}
	return cls, nil
}

// CanSee reports whether bundle b can load any class from pkg, and through
// which exporter. Used by diagnostics and isolation tests.
func (f *Framework) CanSee(b *Bundle, pkg string) (*Bundle, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if exporter, ok := b.wiring.ImportedFrom(pkg); ok {
		return exporter, true
	}
	if b.def != nil {
		for name := range b.def.Classes {
			if manifest.PackageOf(name) == pkg {
				return b, true
			}
		}
	}
	if b.wiring != nil {
		for _, rb := range b.wiring.requires {
			if _, ok := rb.manifest.ExportsPackage(pkg); ok {
				return rb, true
			}
		}
	}
	return nil, false
}
