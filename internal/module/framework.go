package module

import (
	"fmt"
	"sort"
	"sync"

	"dosgi/internal/manifest"
)

// ParentDelegate is consulted by a bundle's class lookup after every local
// mechanism has failed. It is how a virtual framework reaches the explicitly
// exported content of its hosting framework — the "custom classloader …
// topmost … in the classloader's hierarchy" of the paper (§2).
type ParentDelegate interface {
	// DelegateLoadClass returns the class if its package is explicitly
	// exported to this child, or a *ClassNotFoundError.
	DelegateLoadClass(name string) (Class, error)
}

// PermissionChecker lets an embedder veto sensitive operations, the analog
// of the Java SecurityManager checks the paper relies on for isolation.
type PermissionChecker interface {
	// CheckServiceRegister guards service registration.
	CheckServiceRegister(b *Bundle, classes []string) error
	// CheckServiceGet guards service acquisition.
	CheckServiceGet(b *Bundle, ref *ServiceReference) error
	// CheckPackageImport guards class loads that would cross the
	// parent-delegation boundary.
	CheckPackageImport(b *Bundle, pkg string) error
}

// Class is a loaded class entry. Definer conveys class identity: two loads
// that return the same Definer and Name are "the same class", which is what
// lets virtual instances share a single copy of a pulled-down bundle
// (Figure 4).
type Class struct {
	Name    string
	Value   any
	Definer *Bundle
}

// Option configures a Framework.
type Option func(*config)

type config struct {
	name              string
	defs              *DefinitionRegistry
	parent            ParentDelegate
	perm              PermissionChecker
	props             map[string]string
	systemClasses     map[string]any
	initialStartLevel int
	startLevel        int
}

// WithName sets a diagnostic name for the framework.
func WithName(name string) Option { return func(c *config) { c.name = name } }

// WithDefinitions sets the registry the framework installs bundles from.
func WithDefinitions(defs *DefinitionRegistry) Option {
	return func(c *config) { c.defs = defs }
}

// WithParent attaches the parent delegation hook used by virtual
// frameworks.
func WithParent(p ParentDelegate) Option { return func(c *config) { c.parent = p } }

// WithPermissionChecker attaches a security policy.
func WithPermissionChecker(p PermissionChecker) Option { return func(c *config) { c.perm = p } }

// WithProperty sets a framework property, visible via Context.Property.
func WithProperty(key, value string) Option {
	return func(c *config) { c.props[key] = value }
}

// WithSystemClasses provides classes exported by the system bundle itself
// (the analog of packages on the JVM boot classpath / framework exports).
func WithSystemClasses(classes map[string]any) Option {
	return func(c *config) {
		for k, v := range classes {
			c.systemClasses[k] = v
		}
	}
}

// WithInitialBundleStartLevel sets the start level assigned to newly
// installed bundles whose manifests do not specify one.
func WithInitialBundleStartLevel(level int) Option {
	return func(c *config) { c.initialStartLevel = level }
}

// WithStartLevel sets the framework's active start level reached by Start.
func WithStartLevel(level int) Option {
	return func(c *config) { c.startLevel = level }
}

// Framework is a dynamic module system instance: the Go reconstruction of
// an OSGi framework. It owns bundles, their wiring and the service
// registry. All exported methods are safe for concurrent use.
type Framework struct {
	mu sync.Mutex

	name   string
	defs   *DefinitionRegistry
	parent ParentDelegate
	perm   PermissionChecker
	props  map[string]string

	state             BundleState
	startLevel        int
	targetStartLevel  int
	initialStartLevel int

	bundles    map[BundleID]*Bundle
	byLocation map[string]*Bundle
	zombies    map[BundleID]*Bundle
	nextID     BundleID
	system     *Bundle

	registry *serviceRegistry

	listenerID       int
	bundleListeners  []bundleListenerEntry
	fwListeners      []frameworkListenerEntry
	pendingEvents    []func()
	dispatching      bool
	dispatchWaitMu   sync.Mutex // serializes top-level dispatch loops
	snapshotExtender map[string][]byte
}

// New creates a framework in the RESOLVED state. Call Start to activate it.
func New(opts ...Option) *Framework {
	cfg := &config{
		name:              "framework",
		props:             make(map[string]string),
		systemClasses:     make(map[string]any),
		initialStartLevel: 1,
		startLevel:        1,
	}
	for _, opt := range opts {
		opt(cfg)
	}
	if cfg.defs == nil {
		cfg.defs = NewDefinitionRegistry()
	}
	f := &Framework{
		name:              cfg.name,
		defs:              cfg.defs,
		parent:            cfg.parent,
		perm:              cfg.perm,
		props:             cfg.props,
		state:             StateResolved,
		startLevel:        0,
		targetStartLevel:  cfg.startLevel,
		initialStartLevel: cfg.initialStartLevel,
		bundles:           make(map[BundleID]*Bundle),
		byLocation:        make(map[string]*Bundle),
		zombies:           make(map[BundleID]*Bundle),
		nextID:            1,
		snapshotExtender:  make(map[string][]byte),
	}
	f.registry = newServiceRegistry(f)
	f.system = f.newSystemBundle(cfg.systemClasses)
	f.bundles[SystemBundleID] = f.system
	return f
}

func (f *Framework) newSystemBundle(classes map[string]any) *Bundle {
	exports := make(map[string]bool)
	for name := range classes {
		exports[manifest.PackageOf(name)] = true
	}
	pkgs := make([]string, 0, len(exports))
	for p := range exports {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	text := "Bundle-SymbolicName: system.bundle\nBundle-Version: 1.0.0\n"
	if len(pkgs) > 0 {
		text += "Export-Package: "
		for i, p := range pkgs {
			if i > 0 {
				text += ","
			}
			text += p
		}
		text += "\n"
	}
	m := manifest.MustParse(text)
	sys := &Bundle{
		fw:         f,
		id:         SystemBundleID,
		location:   "system",
		manifest:   m,
		def:        &Definition{ManifestText: text, Classes: classes},
		state:      StateResolved,
		startLevel: 0,
		wiring:     &Wiring{imports: map[string]*Bundle{}, dynamic: map[string]*Bundle{}},
		data:       make(map[string][]byte),
	}
	sys.ctx = &Context{bundle: sys, fw: f}
	return sys
}

// Name returns the framework's diagnostic name.
func (f *Framework) Name() string { return f.name }

// Definitions returns the definition registry bundles install from.
func (f *Framework) Definitions() *DefinitionRegistry { return f.defs }

// Property returns a framework property.
func (f *Framework) Property(key string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.props[key]
}

// SetProperty sets a framework property.
func (f *Framework) SetProperty(key, value string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.props[key] = value
}

// State returns the framework's lifecycle state (the system bundle state).
func (f *Framework) State() BundleState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state
}

// SystemBundle returns the system bundle (id 0).
func (f *Framework) SystemBundle() *Bundle { return f.system }

// SystemContext returns the system bundle's context. Embedders (the
// instance manager, virtual-framework plumbing) use it to interact with the
// registry on behalf of the framework itself.
func (f *Framework) SystemContext() *Context { return f.system.ctx }

// Start activates the framework and raises the start level to the
// configured target, starting persistently started bundles.
func (f *Framework) Start() error {
	f.mu.Lock()
	if f.state == StateActive {
		f.mu.Unlock()
		return nil
	}
	f.state = StateActive
	target := f.targetStartLevel
	f.queueFrameworkEvent(FrameworkEvent{Type: FrameworkStarted, Bundle: f.system})
	f.mu.Unlock()
	f.dispatch()
	return f.SetStartLevel(target)
}

// Stop lowers the start level to zero (stopping every bundle in reverse
// order) and deactivates the framework.
func (f *Framework) Stop() error {
	f.mu.Lock()
	if f.state != StateActive {
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()
	if err := f.setStartLevel(0, false); err != nil {
		return err
	}
	f.mu.Lock()
	f.state = StateResolved
	f.queueFrameworkEvent(FrameworkEvent{Type: FrameworkStopped, Bundle: f.system})
	f.mu.Unlock()
	f.dispatch()
	return nil
}

// StartLevel returns the framework's current start level.
func (f *Framework) StartLevel() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.startLevel
}

// SetStartLevel moves the framework to the given start level, starting and
// stopping persistently started bundles as needed.
func (f *Framework) SetStartLevel(level int) error {
	return f.setStartLevel(level, true)
}

func (f *Framework) setStartLevel(level int, requireActive bool) error {
	if level < 0 {
		return fmt.Errorf("%w: negative start level", ErrInvalidState)
	}
	f.mu.Lock()
	if requireActive && f.state != StateActive {
		f.mu.Unlock()
		return fmt.Errorf("%w: framework is not active", ErrInvalidState)
	}
	f.startLevel = level
	if f.state == StateActive {
		f.targetStartLevel = level
	}

	type action struct {
		b     *Bundle
		start bool
	}
	var plan []action
	all := f.bundlesLocked()
	// Starts in (startLevel, id) ascending order.
	for _, b := range all {
		if b.isSystem() {
			continue
		}
		if b.persistentlyStarted && b.startLevel <= level && b.state != StateActive && b.state != StateUninstalled {
			plan = append(plan, action{b: b, start: true})
		}
	}
	sort.SliceStable(plan, func(i, j int) bool {
		if plan[i].b.startLevel != plan[j].b.startLevel {
			return plan[i].b.startLevel < plan[j].b.startLevel
		}
		return plan[i].b.id < plan[j].b.id
	})
	// Stops in (startLevel, id) descending order, appended after starts.
	var stops []action
	for _, b := range all {
		if b.isSystem() {
			continue
		}
		if b.startLevel > level && b.state == StateActive {
			stops = append(stops, action{b: b})
		}
	}
	sort.SliceStable(stops, func(i, j int) bool {
		if stops[i].b.startLevel != stops[j].b.startLevel {
			return stops[i].b.startLevel > stops[j].b.startLevel
		}
		return stops[i].b.id > stops[j].b.id
	})
	plan = append(plan, stops...)
	f.queueFrameworkEvent(FrameworkEvent{Type: FrameworkStartLevelChanged, Bundle: f.system})
	f.mu.Unlock()

	var firstErr error
	for _, a := range plan {
		var err error
		if a.start {
			err = f.startBundle(a.b, false)
		} else {
			err = f.stopBundle(a.b, false)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err != nil {
			f.reportError(a.b, err)
		}
	}
	f.dispatch()
	return firstErr
}

// InstallBundle installs the definition registered under location.
func (f *Framework) InstallBundle(location string) (*Bundle, error) {
	def, ok := f.defs.Get(location)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDefinitionNotFound, location)
	}
	m, err := manifest.Parse(def.ManifestText)
	if err != nil {
		return nil, err
	}

	f.mu.Lock()
	if existing, dup := f.byLocation[location]; dup {
		f.mu.Unlock()
		_ = existing
		return existing, fmt.Errorf("%w: %q", ErrDuplicateLocation, location)
	}
	for _, b := range f.bundles {
		if b.manifest.SymbolicName == m.SymbolicName && b.manifest.Version.Compare(m.Version) == 0 {
			f.mu.Unlock()
			return nil, fmt.Errorf("module: bundle %s/%s already installed from %q",
				m.SymbolicName, m.Version, b.location)
		}
	}
	b := &Bundle{
		fw:         f,
		id:         f.nextID,
		location:   location,
		manifest:   m,
		def:        def,
		state:      StateInstalled,
		startLevel: f.initialStartLevel,
		data:       make(map[string][]byte),
	}
	if m.StartLevel > 0 {
		b.startLevel = m.StartLevel
	}
	for name, content := range def.DataFiles {
		cp := make([]byte, len(content))
		copy(cp, content)
		b.data[name] = cp
	}
	f.nextID++
	f.bundles[b.id] = b
	f.byLocation[location] = b
	f.queueBundleEvent(BundleEvent{Type: BundleInstalled, Bundle: b})
	f.mu.Unlock()
	f.dispatch()
	return b, nil
}

// GetBundle returns the bundle with the given id.
func (f *Framework) GetBundle(id BundleID) (*Bundle, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.bundles[id]
	return b, ok
}

// GetBundleByLocation returns the bundle installed from location.
func (f *Framework) GetBundleByLocation(location string) (*Bundle, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.byLocation[location]
	return b, ok
}

// GetBundleBySymbolicName returns the highest-version bundle with the given
// symbolic name.
func (f *Framework) GetBundleBySymbolicName(name string) (*Bundle, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best *Bundle
	for _, b := range f.bundles {
		if b.manifest.SymbolicName != name {
			continue
		}
		if best == nil || b.manifest.Version.Compare(best.manifest.Version) > 0 {
			best = b
		}
	}
	return best, best != nil
}

// Bundles returns all installed bundles sorted by id, including the system
// bundle.
func (f *Framework) Bundles() []*Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bundlesLocked()
}

func (f *Framework) bundlesLocked() []*Bundle {
	out := make([]*Bundle, 0, len(f.bundles))
	for _, b := range f.bundles {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// ResolveAll attempts to resolve every INSTALLED bundle, co-resolving
// mutually dependent sets. It returns a *ResolutionError listing bundles
// that could not be resolved, while still committing those that could.
func (f *Framework) ResolveAll() error {
	f.mu.Lock()
	err := f.resolveAllLocked()
	f.mu.Unlock()
	f.dispatch()
	return err
}

// startBundle starts b. When persistent is true the start is recorded as
// administrator intent (survives snapshots); start-level driven starts pass
// false.
func (f *Framework) startBundle(b *Bundle, persistent bool) error {
	f.mu.Lock()
	switch b.state {
	case StateUninstalled:
		f.mu.Unlock()
		return ErrUninstalled
	case StateActive:
		if persistent {
			b.persistentlyStarted = true
		}
		f.mu.Unlock()
		return nil
	case StateStarting, StateStopping:
		f.mu.Unlock()
		return fmt.Errorf("%w: bundle %s is %s", ErrInvalidState, b.location, b.state)
	}
	if persistent {
		b.persistentlyStarted = true
	}
	if b.startLevel > f.startLevel {
		// Deferred: will start when the framework start level reaches it.
		f.mu.Unlock()
		f.dispatch()
		return nil
	}
	if b.state == StateInstalled {
		if err := f.resolveAllLocked(); err != nil || b.state == StateInstalled {
			f.mu.Unlock()
			f.dispatch()
			if err == nil {
				err = fmt.Errorf("module: bundle %s: %w", b.location, ErrInvalidState)
			}
			return fmt.Errorf("module: cannot start unresolved bundle %s: %w", b.location, err)
		}
	}
	b.state = StateStarting
	b.ctx = &Context{bundle: b, fw: f}
	var act Activator
	if b.manifest.Activator != "" {
		if b.def.NewActivator == nil {
			b.state = StateResolved
			b.ctx = nil
			f.mu.Unlock()
			f.dispatch()
			return fmt.Errorf("%w: %s", ErrNoActivator, b.manifest.Activator)
		}
		act = b.def.NewActivator()
	} else if b.def.NewActivator != nil {
		act = b.def.NewActivator()
	}
	b.activator = act
	ctx := b.ctx
	f.queueBundleEvent(BundleEvent{Type: BundleStarting, Bundle: b})
	f.mu.Unlock()
	f.dispatch()

	if act != nil {
		if err := act.Start(ctx); err != nil {
			// Activator failure: clean up anything it registered, return to
			// RESOLVED.
			f.registry.unregisterAllOf(b)
			f.registry.ungetAllHeldBy(b)
			f.mu.Lock()
			b.state = StateResolved
			b.ctx = nil
			b.activator = nil
			f.queueBundleEvent(BundleEvent{Type: BundleStopped, Bundle: b})
			f.mu.Unlock()
			f.dispatch()
			return fmt.Errorf("module: activator of %s failed: %w", b.location, err)
		}
	}

	f.mu.Lock()
	b.state = StateActive
	f.queueBundleEvent(BundleEvent{Type: BundleStarted, Bundle: b})
	f.mu.Unlock()
	f.dispatch()
	return nil
}

// stopBundle stops b. When persistent is true the administrator intent flag
// is cleared.
func (f *Framework) stopBundle(b *Bundle, persistent bool) error {
	f.mu.Lock()
	if persistent {
		b.persistentlyStarted = false
	}
	switch b.state {
	case StateUninstalled:
		f.mu.Unlock()
		return ErrUninstalled
	case StateActive:
	default:
		f.mu.Unlock()
		return nil
	}
	b.state = StateStopping
	act := b.activator
	ctx := b.ctx
	f.queueBundleEvent(BundleEvent{Type: BundleStopping, Bundle: b})
	f.mu.Unlock()
	f.dispatch()

	var stopErr error
	if act != nil {
		stopErr = act.Stop(ctx)
	}
	// Whatever the activator did, the framework reclaims the bundle's
	// services and service uses.
	f.registry.unregisterAllOf(b)
	f.registry.ungetAllHeldBy(b)
	f.removeListenersOf(b)

	f.mu.Lock()
	b.state = StateResolved
	b.ctx = nil
	b.activator = nil
	f.queueBundleEvent(BundleEvent{Type: BundleStopped, Bundle: b})
	f.mu.Unlock()
	f.dispatch()
	if stopErr != nil {
		return fmt.Errorf("module: activator stop of %s failed: %w", b.location, stopErr)
	}
	return nil
}

func (f *Framework) updateBundle(b *Bundle) error {
	def, ok := f.defs.Get(b.location)
	if !ok {
		return fmt.Errorf("%w: %q", ErrDefinitionNotFound, b.location)
	}
	m, err := manifest.Parse(def.ManifestText)
	if err != nil {
		return err
	}
	wasActive := b.State() == StateActive
	if wasActive {
		if err := f.stopBundle(b, false); err != nil {
			return err
		}
	}
	f.mu.Lock()
	if b.state == StateUninstalled {
		f.mu.Unlock()
		return ErrUninstalled
	}
	b.manifest = m
	b.def = def
	b.wiring = nil
	b.state = StateInstalled
	f.queueBundleEvent(BundleEvent{Type: BundleUpdated, Bundle: b})
	f.mu.Unlock()
	f.dispatch()
	if wasActive {
		return f.startBundle(b, false)
	}
	return nil
}

func (f *Framework) uninstallBundle(b *Bundle) error {
	if b.isSystem() {
		return fmt.Errorf("%w: cannot uninstall the system bundle", ErrInvalidState)
	}
	if b.State() == StateActive {
		if err := f.stopBundle(b, true); err != nil {
			return err
		}
	}
	f.mu.Lock()
	if b.state == StateUninstalled {
		f.mu.Unlock()
		return ErrUninstalled
	}
	delete(f.bundles, b.id)
	delete(f.byLocation, b.location)
	// Keep a zombie: bundles wired to this one keep functioning until
	// RefreshBundles, per OSGi uninstall semantics.
	f.zombies[b.id] = b
	b.state = StateUninstalled
	f.queueBundleEvent(BundleEvent{Type: BundleUninstalled, Bundle: b})
	f.mu.Unlock()
	f.dispatch()
	return nil
}

// RefreshBundles recomputes the wiring of every bundle: active bundles are
// stopped, all wiring is discarded (releasing zombies of uninstalled
// bundles), resolution runs again and previously active bundles restart.
func (f *Framework) RefreshBundles() error {
	f.mu.Lock()
	var wasActive []*Bundle
	for _, b := range f.bundlesLocked() {
		if b.isSystem() {
			continue
		}
		if b.state == StateActive {
			wasActive = append(wasActive, b)
		}
	}
	// Stop in reverse (startLevel, id) order.
	sort.SliceStable(wasActive, func(i, j int) bool {
		if wasActive[i].startLevel != wasActive[j].startLevel {
			return wasActive[i].startLevel > wasActive[j].startLevel
		}
		return wasActive[i].id > wasActive[j].id
	})
	f.mu.Unlock()

	for _, b := range wasActive {
		if err := f.stopBundle(b, false); err != nil {
			f.reportError(b, err)
		}
	}

	f.mu.Lock()
	for _, b := range f.bundlesLocked() {
		if b.isSystem() || b.state == StateUninstalled {
			continue
		}
		if b.state == StateResolved {
			f.queueBundleEvent(BundleEvent{Type: BundleUnresolved, Bundle: b})
		}
		b.wiring = nil
		b.state = StateInstalled
	}
	f.zombies = make(map[BundleID]*Bundle)
	resolveErr := f.resolveAllLocked()
	f.mu.Unlock()
	f.dispatch()

	// Restart in (startLevel, id) order.
	sort.SliceStable(wasActive, func(i, j int) bool {
		if wasActive[i].startLevel != wasActive[j].startLevel {
			return wasActive[i].startLevel < wasActive[j].startLevel
		}
		return wasActive[i].id < wasActive[j].id
	})
	var firstErr error
	for _, b := range wasActive {
		if err := f.startBundle(b, false); err != nil {
			f.reportError(b, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return resolveErr
}

// AddBundleListener registers a bundle event listener.
func (f *Framework) AddBundleListener(l BundleListener) *ListenerHandle {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.listenerID++
	id := f.listenerID
	f.bundleListeners = append(f.bundleListeners, bundleListenerEntry{id: id, fn: l})
	return &ListenerHandle{remove: func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i, e := range f.bundleListeners {
			if e.id == id {
				f.bundleListeners = append(f.bundleListeners[:i], f.bundleListeners[i+1:]...)
				break
			}
		}
	}}
}

// AddFrameworkListener registers a framework event listener.
func (f *Framework) AddFrameworkListener(l FrameworkListener) *ListenerHandle {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.listenerID++
	id := f.listenerID
	f.fwListeners = append(f.fwListeners, frameworkListenerEntry{id: id, fn: l})
	return &ListenerHandle{remove: func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i, e := range f.fwListeners {
			if e.id == id {
				f.fwListeners = append(f.fwListeners[:i], f.fwListeners[i+1:]...)
				break
			}
		}
	}}
}

// AddServiceListener registers a service event listener, optionally
// restricted by an LDAP filter over the service properties.
func (f *Framework) AddServiceListener(l ServiceListener, filterExpr string) (*ListenerHandle, error) {
	return f.registry.addListener(nil, l, filterExpr)
}

// queueBundleEvent snapshots the listener list and queues a delivery.
// Callers must hold f.mu.
func (f *Framework) queueBundleEvent(ev BundleEvent) {
	listeners := make([]BundleListener, 0, len(f.bundleListeners))
	for _, e := range f.bundleListeners {
		listeners = append(listeners, e.fn)
	}
	f.pendingEvents = append(f.pendingEvents, func() {
		for _, l := range listeners {
			l(ev)
		}
	})
}

// queueFrameworkEvent is queueBundleEvent for framework events. Callers
// must hold f.mu.
func (f *Framework) queueFrameworkEvent(ev FrameworkEvent) {
	listeners := make([]FrameworkListener, 0, len(f.fwListeners))
	for _, e := range f.fwListeners {
		listeners = append(listeners, e.fn)
	}
	f.pendingEvents = append(f.pendingEvents, func() {
		for _, l := range listeners {
			l(ev)
		}
	})
}

// queueDelivery queues an arbitrary event delivery. Callers must hold f.mu.
func (f *Framework) queueDelivery(fn func()) {
	f.pendingEvents = append(f.pendingEvents, fn)
}

// dispatch drains queued event deliveries. It must be called without f.mu
// held. Nested mutations performed by listeners queue further deliveries
// which the outermost dispatch drains, preserving causal order.
func (f *Framework) dispatch() {
	for {
		f.mu.Lock()
		if f.dispatching || len(f.pendingEvents) == 0 {
			f.mu.Unlock()
			return
		}
		f.dispatching = true
		batch := f.pendingEvents
		f.pendingEvents = nil
		f.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
		f.mu.Lock()
		f.dispatching = false
		f.mu.Unlock()
	}
}

// reportError publishes a FrameworkError event.
func (f *Framework) reportError(b *Bundle, err error) {
	f.mu.Lock()
	f.queueFrameworkEvent(FrameworkEvent{Type: FrameworkError, Bundle: b, Err: err})
	f.mu.Unlock()
	f.dispatch()
}

// removeListenersOf drops service listeners registered through a bundle's
// context when that bundle stops.
func (f *Framework) removeListenersOf(b *Bundle) {
	f.registry.removeListenersOf(b)
}

// checkServiceRegister applies the permission policy.
func (f *Framework) checkServiceRegister(b *Bundle, classes []string) error {
	if f.perm == nil {
		return nil
	}
	return f.perm.CheckServiceRegister(b, classes)
}

func (f *Framework) checkServiceGet(b *Bundle, ref *ServiceReference) error {
	if f.perm == nil {
		return nil
	}
	return f.perm.CheckServiceGet(b, ref)
}

func (f *Framework) checkPackageImport(b *Bundle, pkg string) error {
	if f.perm == nil {
		return nil
	}
	return f.perm.CheckPackageImport(b, pkg)
}
