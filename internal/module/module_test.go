package module

import (
	"fmt"
	"testing"
)

// testActivator counts lifecycle callbacks and optionally fails.
type testActivator struct {
	started   int
	stopped   int
	failStart bool
	failStop  bool
	onStart   func(ctx *Context) error
	onStop    func(ctx *Context) error
}

func (a *testActivator) Start(ctx *Context) error {
	a.started++
	if a.failStart {
		return fmt.Errorf("boom on start")
	}
	if a.onStart != nil {
		return a.onStart(ctx)
	}
	return nil
}

func (a *testActivator) Stop(ctx *Context) error {
	a.stopped++
	if a.failStop {
		return fmt.Errorf("boom on stop")
	}
	if a.onStop != nil {
		return a.onStop(ctx)
	}
	return nil
}

// defFor builds a definition with the given manifest and classes.
func defFor(manifestText string, classes map[string]any) *Definition {
	return &Definition{ManifestText: manifestText, Classes: classes}
}

// newTestFramework builds a started framework with the given location ->
// definition map.
func newTestFramework(t *testing.T, defs map[string]*Definition) *Framework {
	t.Helper()
	reg := NewDefinitionRegistry()
	for loc, d := range defs {
		if err := reg.Add(loc, d); err != nil {
			t.Fatalf("Add(%q): %v", loc, err)
		}
	}
	f := New(WithName("test"), WithDefinitions(reg))
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return f
}

func mustInstall(t *testing.T, f *Framework, loc string) *Bundle {
	t.Helper()
	b, err := f.InstallBundle(loc)
	if err != nil {
		t.Fatalf("InstallBundle(%q): %v", loc, err)
	}
	return b
}

func mustStart(t *testing.T, b *Bundle) {
	t.Helper()
	if err := b.Start(); err != nil {
		t.Fatalf("Start(%s): %v", b.Location(), err)
	}
}

const (
	libManifest = `Bundle-SymbolicName: com.example.lib
Bundle-Version: 1.0.0
Export-Package: com.example.lib;version="1.0"
`
	appManifest = `Bundle-SymbolicName: com.example.app
Bundle-Version: 1.0.0
Bundle-Activator: com.example.app.Activator
Import-Package: com.example.lib;version="[1.0,2.0)"
`
)

func libDef() *Definition {
	return defFor(libManifest, map[string]any{
		"com.example.lib.Util": "util-v1",
	})
}

func appDef(act *testActivator) *Definition {
	d := defFor(appManifest, map[string]any{
		"com.example.app.Main": "main",
	})
	d.NewActivator = func() Activator { return act }
	return d
}
