package module

import "dosgi/internal/filter"

// BundleEventType enumerates bundle lifecycle events.
type BundleEventType int

// Bundle lifecycle event types.
const (
	BundleInstalled BundleEventType = iota + 1
	BundleResolved
	BundleStarting
	BundleStarted
	BundleStopping
	BundleStopped
	BundleUpdated
	BundleUninstalled
	BundleUnresolved
)

var bundleEventNames = map[BundleEventType]string{
	BundleInstalled:   "INSTALLED",
	BundleResolved:    "RESOLVED",
	BundleStarting:    "STARTING",
	BundleStarted:     "STARTED",
	BundleStopping:    "STOPPING",
	BundleStopped:     "STOPPED",
	BundleUpdated:     "UPDATED",
	BundleUninstalled: "UNINSTALLED",
	BundleUnresolved:  "UNRESOLVED",
}

func (t BundleEventType) String() string {
	if s, ok := bundleEventNames[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// BundleEvent describes a bundle lifecycle transition.
type BundleEvent struct {
	Type   BundleEventType
	Bundle *Bundle
}

// BundleListener receives bundle events.
type BundleListener func(BundleEvent)

// ServiceEventType enumerates service registry events.
type ServiceEventType int

// Service registry event types.
const (
	ServiceRegistered ServiceEventType = iota + 1
	ServiceModified
	ServiceUnregistering
)

func (t ServiceEventType) String() string {
	switch t {
	case ServiceRegistered:
		return "REGISTERED"
	case ServiceModified:
		return "MODIFIED"
	case ServiceUnregistering:
		return "UNREGISTERING"
	}
	return "UNKNOWN"
}

// ServiceEvent describes a service registration change.
type ServiceEvent struct {
	Type      ServiceEventType
	Reference *ServiceReference
}

// ServiceListener receives service events.
type ServiceListener func(ServiceEvent)

// FrameworkEventType enumerates framework-level events.
type FrameworkEventType int

// Framework event types.
const (
	FrameworkStarted FrameworkEventType = iota + 1
	FrameworkStopped
	FrameworkError
	FrameworkStartLevelChanged
)

func (t FrameworkEventType) String() string {
	switch t {
	case FrameworkStarted:
		return "STARTED"
	case FrameworkStopped:
		return "STOPPED"
	case FrameworkError:
		return "ERROR"
	case FrameworkStartLevelChanged:
		return "STARTLEVEL_CHANGED"
	}
	return "UNKNOWN"
}

// FrameworkEvent describes a framework-level occurrence.
type FrameworkEvent struct {
	Type   FrameworkEventType
	Bundle *Bundle // bundle involved, if any
	Err    error   // for FrameworkError
}

// FrameworkListener receives framework events.
type FrameworkListener func(FrameworkEvent)

// ListenerHandle removes a previously added listener.
type ListenerHandle struct {
	remove func()
}

// Remove detaches the listener. It is safe to call more than once.
func (h *ListenerHandle) Remove() {
	if h != nil && h.remove != nil {
		h.remove()
		h.remove = nil
	}
}

type bundleListenerEntry struct {
	id int
	fn BundleListener
}

type serviceListenerEntry struct {
	id     int
	fn     ServiceListener
	filter *filter.Filter // nil matches everything
}

type frameworkListenerEntry struct {
	id int
	fn FrameworkListener
}
