package module

import (
	"fmt"
	"sort"
	"sync"

	"dosgi/internal/filter"
)

// Standard service property keys.
const (
	PropServiceID      = "service.id"
	PropObjectClass    = "objectClass"
	PropServiceRanking = "service.ranking"

	// PropServiceExported marks a registration for export to other
	// frameworks (Remote Services' service.exported.interfaces, collapsed
	// to a boolean: set it to true and internal/remote publishes the
	// service).
	PropServiceExported = "service.exported"
	// PropServiceExportedName overrides the name the service is exported
	// under; the default is the first objectClass entry.
	PropServiceExportedName = "service.exported.name"
	// PropServiceImported marks a registration as a client-side proxy for
	// a service exported elsewhere.
	PropServiceImported = "service.imported"
	// PropServiceImportedName records the remote service name a proxy
	// invokes.
	PropServiceImportedName = "service.imported.name"
)

// Properties carries service registration properties.
type Properties map[string]any

func (p Properties) clone() Properties {
	out := make(Properties, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// ServiceFactory lets a registration hand out per-bundle service instances,
// as in OSGi. A plain (non-factory) registration hands out the same value
// to everyone.
type ServiceFactory interface {
	GetService(requester *Bundle, reg *ServiceRegistration) any
	UngetService(requester *Bundle, reg *ServiceRegistration, svc any)
}

// ServiceRegistration is the registrar-side handle of a published service.
type ServiceRegistration struct {
	registry *serviceRegistry
	id       int64
	classes  []string
	owner    *Bundle

	// Guarded by registry.mu.
	props        Properties
	svc          any
	ranking      int
	unregistered bool
	usage        map[BundleID]*serviceUse
	ref          *ServiceReference
}

type serviceUse struct {
	count  int
	cached any // factory product for this bundle
}

// Reference returns the reference clients use to obtain the service.
func (r *ServiceRegistration) Reference() *ServiceReference {
	r.registry.mu.Lock()
	defer r.registry.mu.Unlock()
	return r.ref
}

// SetProperties replaces the registration's properties (service.id and
// objectClass are preserved) and emits a MODIFIED event.
func (r *ServiceRegistration) SetProperties(props Properties) error {
	r.registry.mu.Lock()
	if r.unregistered {
		r.registry.mu.Unlock()
		return ErrServiceGone
	}
	next := props.clone()
	next[PropServiceID] = r.id
	next[PropObjectClass] = append([]string(nil), r.classes...)
	if rk, ok := next[PropServiceRanking].(int); ok {
		r.ranking = rk
	} else {
		next[PropServiceRanking] = r.ranking
	}
	r.props = next
	ev := ServiceEvent{Type: ServiceModified, Reference: r.ref}
	r.registry.queueServiceEventLocked(ev)
	r.registry.mu.Unlock()
	r.registry.fw.dispatch()
	return nil
}

// Unregister withdraws the service: an UNREGISTERING event fires, then all
// outstanding uses are released (factories get UngetService callbacks).
func (r *ServiceRegistration) Unregister() error {
	return r.registry.unregister(r)
}

// ServiceReference is the client-side view of a registration.
type ServiceReference struct {
	reg *ServiceRegistration
}

// ID returns the service.id.
func (ref *ServiceReference) ID() int64 { return ref.reg.id }

// Classes returns the objectClass names of the service.
func (ref *ServiceReference) Classes() []string {
	return append([]string(nil), ref.reg.classes...)
}

// Bundle returns the registering bundle.
func (ref *ServiceReference) Bundle() *Bundle { return ref.reg.owner }

// Ranking returns the service.ranking value.
func (ref *ServiceReference) Ranking() int {
	ref.reg.registry.mu.Lock()
	defer ref.reg.registry.mu.Unlock()
	return ref.reg.ranking
}

// Property returns one service property.
func (ref *ServiceReference) Property(key string) any {
	ref.reg.registry.mu.Lock()
	defer ref.reg.registry.mu.Unlock()
	return ref.reg.props[key]
}

// Properties returns a copy of all service properties.
func (ref *ServiceReference) Properties() Properties {
	ref.reg.registry.mu.Lock()
	defer ref.reg.registry.mu.Unlock()
	return ref.reg.props.clone()
}

// IsLive reports whether the registration is still registered.
func (ref *ServiceReference) IsLive() bool {
	ref.reg.registry.mu.Lock()
	defer ref.reg.registry.mu.Unlock()
	return !ref.reg.unregistered
}

// String implements fmt.Stringer.
func (ref *ServiceReference) String() string {
	return fmt.Sprintf("service{id=%d classes=%v}", ref.reg.id, ref.reg.classes)
}

// serviceRegistry implements the OSGi service registry for one framework.
type serviceRegistry struct {
	fw *Framework

	mu        sync.Mutex
	nextID    int64
	regs      map[int64]*ServiceRegistration
	listeners []registryListener
	nextLID   int
}

type registryListener struct {
	id     int
	owner  *Bundle // nil for framework-level listeners
	fn     ServiceListener
	filter *filter.Filter
}

func newServiceRegistry(fw *Framework) *serviceRegistry {
	return &serviceRegistry{fw: fw, regs: make(map[int64]*ServiceRegistration), nextID: 1}
}

// register publishes a service.
func (sr *serviceRegistry) register(owner *Bundle, classes []string, svc any, props Properties) (*ServiceRegistration, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("module: service must declare at least one class")
	}
	if svc == nil {
		return nil, fmt.Errorf("module: service object must not be nil")
	}
	if err := sr.fw.checkServiceRegister(owner, classes); err != nil {
		return nil, err
	}
	sr.mu.Lock()
	id := sr.nextID
	sr.nextID++
	p := props.clone()
	if p == nil {
		p = make(Properties)
	}
	ranking := 0
	if rk, ok := p[PropServiceRanking].(int); ok {
		ranking = rk
	}
	p[PropServiceID] = id
	p[PropObjectClass] = append([]string(nil), classes...)
	p[PropServiceRanking] = ranking
	reg := &ServiceRegistration{
		registry: sr,
		id:       id,
		classes:  append([]string(nil), classes...),
		owner:    owner,
		props:    p,
		svc:      svc,
		ranking:  ranking,
		usage:    make(map[BundleID]*serviceUse),
	}
	reg.ref = &ServiceReference{reg: reg}
	sr.regs[id] = reg
	sr.queueServiceEventLocked(ServiceEvent{Type: ServiceRegistered, Reference: reg.ref})
	sr.mu.Unlock()
	sr.fw.dispatch()
	return reg, nil
}

func (sr *serviceRegistry) unregister(reg *ServiceRegistration) error {
	sr.mu.Lock()
	if reg.unregistered {
		sr.mu.Unlock()
		return ErrServiceGone
	}
	reg.unregistered = true
	sr.queueServiceEventLocked(ServiceEvent{Type: ServiceUnregistering, Reference: reg.ref})
	delete(sr.regs, reg.id)
	// Snapshot factory releases to run outside the lock.
	type release struct {
		bundle *Bundle
		svc    any
	}
	var releases []release
	if factory, isFactory := reg.svc.(ServiceFactory); isFactory {
		_ = factory
		for bid, use := range reg.usage {
			if use.cached != nil {
				b := sr.bundleByIDLocked(bid)
				releases = append(releases, release{bundle: b, svc: use.cached})
			}
		}
	}
	reg.usage = make(map[BundleID]*serviceUse)
	factory, _ := reg.svc.(ServiceFactory)
	sr.mu.Unlock()
	sr.fw.dispatch()
	if factory != nil {
		for _, rel := range releases {
			factory.UngetService(rel.bundle, reg, rel.svc)
		}
	}
	return nil
}

func (sr *serviceRegistry) bundleByIDLocked(id BundleID) *Bundle {
	// The framework map is guarded by fw.mu; take care with lock order:
	// registry.mu may be held while acquiring fw.mu, never the reverse.
	sr.fw.mu.Lock()
	defer sr.fw.mu.Unlock()
	if b, ok := sr.fw.bundles[id]; ok {
		return b
	}
	return sr.fw.zombies[id]
}

// references returns live references matching class (empty = any) and
// filter, best-ranked first.
func (sr *serviceRegistry) references(class string, flt *filter.Filter) []*ServiceReference {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var out []*ServiceReference
	for _, reg := range sr.regs {
		if class != "" && !containsString(reg.classes, class) {
			continue
		}
		if flt != nil && !flt.Matches(reg.props) {
			continue
		}
		out = append(out, reg.ref)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].reg, out[j].reg
		if ri.ranking != rj.ranking {
			return ri.ranking > rj.ranking
		}
		return ri.id < rj.id
	})
	return out
}

// getService acquires the service for requester, incrementing its use
// count.
func (sr *serviceRegistry) getService(requester *Bundle, ref *ServiceReference) (any, error) {
	if err := sr.fw.checkServiceGet(requester, ref); err != nil {
		return nil, err
	}
	reg := ref.reg
	sr.mu.Lock()
	if reg.unregistered {
		sr.mu.Unlock()
		return nil, ErrServiceGone
	}
	use, ok := reg.usage[requester.id]
	if !ok {
		use = &serviceUse{}
		reg.usage[requester.id] = use
	}
	use.count++
	factory, isFactory := reg.svc.(ServiceFactory)
	if !isFactory {
		svc := reg.svc
		sr.mu.Unlock()
		return svc, nil
	}
	if use.cached != nil {
		svc := use.cached
		sr.mu.Unlock()
		return svc, nil
	}
	sr.mu.Unlock()
	// Factory call happens outside the lock: factories may use the
	// registry themselves.
	produced := factory.GetService(requester, reg)
	sr.mu.Lock()
	if reg.unregistered {
		sr.mu.Unlock()
		factory.UngetService(requester, reg, produced)
		return nil, ErrServiceGone
	}
	if use.cached == nil {
		use.cached = produced
	}
	svc := use.cached
	sr.mu.Unlock()
	if svc != produced && produced != nil {
		// A concurrent GetService won the race; release the extra product.
		factory.UngetService(requester, reg, produced)
	}
	return svc, nil
}

// ungetService releases one use; it reports whether the requester still
// held the service.
func (sr *serviceRegistry) ungetService(requester *Bundle, ref *ServiceReference) bool {
	reg := ref.reg
	sr.mu.Lock()
	use, ok := reg.usage[requester.id]
	if !ok || use.count == 0 {
		sr.mu.Unlock()
		return false
	}
	use.count--
	var toRelease any
	if use.count == 0 {
		toRelease = use.cached
		delete(reg.usage, requester.id)
	}
	factory, isFactory := reg.svc.(ServiceFactory)
	sr.mu.Unlock()
	if isFactory && toRelease != nil {
		factory.UngetService(requester, reg, toRelease)
	}
	return true
}

// unregisterAllOf withdraws every registration owned by b (bundle stop).
func (sr *serviceRegistry) unregisterAllOf(b *Bundle) {
	sr.mu.Lock()
	var owned []*ServiceRegistration
	for _, reg := range sr.regs {
		if reg.owner == b {
			owned = append(owned, reg)
		}
	}
	sr.mu.Unlock()
	sort.Slice(owned, func(i, j int) bool { return owned[i].id < owned[j].id })
	for _, reg := range owned {
		_ = sr.unregister(reg)
	}
}

// ungetAllHeldBy force-releases every service b still holds (bundle stop).
func (sr *serviceRegistry) ungetAllHeldBy(b *Bundle) {
	sr.mu.Lock()
	type held struct {
		reg *ServiceRegistration
		svc any
	}
	var releases []held
	for _, reg := range sr.regs {
		if use, ok := reg.usage[b.id]; ok {
			if use.cached != nil {
				releases = append(releases, held{reg: reg, svc: use.cached})
			}
			delete(reg.usage, b.id)
		}
	}
	sr.mu.Unlock()
	for _, h := range releases {
		if factory, ok := h.reg.svc.(ServiceFactory); ok {
			factory.UngetService(b, h.reg, h.svc)
		}
	}
}

func (sr *serviceRegistry) referencesByOwner(b *Bundle) []*ServiceReference {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var out []*ServiceReference
	for _, reg := range sr.regs {
		if reg.owner == b {
			out = append(out, reg.ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].reg.id < out[j].reg.id })
	return out
}

func (sr *serviceRegistry) referencesInUseBy(b *Bundle) []*ServiceReference {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var out []*ServiceReference
	for _, reg := range sr.regs {
		if use, ok := reg.usage[b.id]; ok && use.count > 0 {
			out = append(out, reg.ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].reg.id < out[j].reg.id })
	return out
}

func (sr *serviceRegistry) addListener(owner *Bundle, fn ServiceListener, filterExpr string) (*ListenerHandle, error) {
	var flt *filter.Filter
	if filterExpr != "" {
		var err error
		if flt, err = filter.Parse(filterExpr); err != nil {
			return nil, err
		}
	}
	sr.mu.Lock()
	sr.nextLID++
	id := sr.nextLID
	sr.listeners = append(sr.listeners, registryListener{id: id, owner: owner, fn: fn, filter: flt})
	sr.mu.Unlock()
	return &ListenerHandle{remove: func() { sr.removeListener(id) }}, nil
}

func (sr *serviceRegistry) removeListener(id int) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for i, l := range sr.listeners {
		if l.id == id {
			sr.listeners = append(sr.listeners[:i], sr.listeners[i+1:]...)
			return
		}
	}
}

func (sr *serviceRegistry) removeListenersOf(owner *Bundle) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	kept := sr.listeners[:0]
	for _, l := range sr.listeners {
		if l.owner != owner {
			kept = append(kept, l)
		}
	}
	sr.listeners = kept
}

// queueServiceEventLocked snapshots matching listeners and queues delivery
// on the framework event queue. Callers must hold sr.mu.
func (sr *serviceRegistry) queueServiceEventLocked(ev ServiceEvent) {
	props := ev.Reference.reg.props
	var targets []ServiceListener
	for _, l := range sr.listeners {
		if l.filter == nil || l.filter.Matches(props) {
			targets = append(targets, l.fn)
		}
	}
	sr.fw.mu.Lock()
	sr.fw.queueDelivery(func() {
		for _, fn := range targets {
			fn(ev)
		}
	})
	sr.fw.mu.Unlock()
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
