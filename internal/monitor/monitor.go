// Package monitor implements the paper's Monitoring Module (§3.1): it
// samples the resource usage of every virtual instance's resource domain,
// keeps sliding windows for trend queries, and raises threshold events the
// Autonomic Module consumes. Where the paper was blocked by the 2008 JVM
// ("there are no adequate mechanisms to measure and monitor resource usage
// in the actual JVM specification"), this module reads the vjvm substrate's
// exact JSR-284-style accounting; the degraded ThreadGroup estimator
// remains available in vjvm for comparison (experiment E5).
package monitor

import (
	"sort"
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/vjvm"
)

// Metric names a monitored quantity.
type Metric string

// Monitored metrics.
const (
	MetricCPURate Metric = "cpu.rate" // millicores
	MetricCPUTime Metric = "cpu.time" // cumulative ns
	MetricMemory  Metric = "memory"   // bytes
	MetricDisk    Metric = "disk"     // bytes
	MetricTasks   Metric = "tasks"    // count
)

// Sample is one observation of one domain.
type Sample struct {
	At    time.Duration
	Usage vjvm.Usage
}

// Event is a threshold crossing raised to listeners.
type Event struct {
	Rule     string
	Domain   string
	Metric   Metric
	Value    float64
	Limit    float64
	At       time.Duration
	Breached bool // true when entering breach, false when clearing
}

// Rule fires when a metric stays above a threshold for a sustain period.
type Rule struct {
	Name string
	// Domain restricts the rule to one domain; empty matches all.
	Domain string
	Metric Metric
	// Above is the threshold value.
	Above float64
	// Sustain is how long the metric must stay above before firing
	// (0 = immediately).
	Sustain time.Duration
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithInterval sets the sampling period (default 100ms).
func WithInterval(d time.Duration) Option {
	return func(m *Monitor) { m.interval = d }
}

// WithWindow sets how many samples are retained per domain (default 64).
func WithWindow(n int) Option {
	return func(m *Monitor) { m.window = n }
}

// Monitor samples a vjvm's domains.
type Monitor struct {
	sched    clock.Scheduler
	vm       *vjvm.VJVM
	interval time.Duration
	window   int

	mu        sync.Mutex
	running   bool
	timer     clock.Timer
	series    map[string][]Sample
	rules     []Rule
	breachAt  map[string]time.Duration // ruleKey -> first breach time
	inBreach  map[string]bool
	listeners []func(Event)
	lastCPU   map[string]time.Duration
}

// New builds a monitor over vm.
func New(sched clock.Scheduler, vm *vjvm.VJVM, opts ...Option) *Monitor {
	m := &Monitor{
		sched:    sched,
		vm:       vm,
		interval: 100 * time.Millisecond,
		window:   64,
		series:   make(map[string][]Sample),
		breachAt: make(map[string]time.Duration),
		inBreach: make(map[string]bool),
		lastCPU:  make(map[string]time.Duration),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// AddRule installs a threshold rule.
func (m *Monitor) AddRule(r Rule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = append(m.rules, r)
}

// OnEvent subscribes to threshold events.
func (m *Monitor) OnEvent(fn func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// Start begins periodic sampling.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.timer = m.sched.Every(m.interval, m.sample)
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	if m.timer != nil {
		m.timer.Cancel()
		m.timer = nil
	}
}

// Interval returns the sampling period.
func (m *Monitor) Interval() time.Duration { return m.interval }

// sample observes every domain and evaluates rules.
func (m *Monitor) sample() {
	now := m.sched.Now()
	domains := m.vm.Domains()

	m.mu.Lock()
	var events []Event
	live := make(map[string]bool, len(domains))
	for _, d := range domains {
		u := d.Snapshot()
		live[u.Domain] = true
		s := Sample{At: now, Usage: u}
		buf := append(m.series[u.Domain], s)
		if len(buf) > m.window {
			buf = buf[len(buf)-m.window:]
		}
		m.series[u.Domain] = buf
		m.lastCPU[u.Domain] = u.CPUTime

		for _, r := range m.rules {
			if r.Domain != "" && r.Domain != u.Domain {
				continue
			}
			key := r.Name + "/" + u.Domain
			value := metricValue(r.Metric, u)
			if value > r.Above {
				first, seen := m.breachAt[key]
				if !seen {
					m.breachAt[key] = now
					first = now
				}
				if now-first >= r.Sustain && !m.inBreach[key] {
					m.inBreach[key] = true
					events = append(events, Event{
						Rule: r.Name, Domain: u.Domain, Metric: r.Metric,
						Value: value, Limit: r.Above, At: now, Breached: true,
					})
				}
			} else {
				delete(m.breachAt, key)
				if m.inBreach[key] {
					m.inBreach[key] = false
					events = append(events, Event{
						Rule: r.Name, Domain: u.Domain, Metric: r.Metric,
						Value: value, Limit: r.Above, At: now, Breached: false,
					})
				}
			}
		}
	}
	// Clear rule state for removed domains.
	for key := range m.inBreach {
		domain := key[strIndexAfterSlash(key):]
		if !live[domain] {
			delete(m.inBreach, key)
			delete(m.breachAt, key)
		}
	}
	listeners := append(make([]func(Event), 0, len(m.listeners)), m.listeners...)
	m.mu.Unlock()

	for _, ev := range events {
		for _, fn := range listeners {
			fn(ev)
		}
	}
}

func strIndexAfterSlash(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return i + 1
		}
	}
	return 0
}

func metricValue(metric Metric, u vjvm.Usage) float64 {
	switch metric {
	case MetricCPURate:
		return float64(u.CPURate)
	case MetricCPUTime:
		return float64(u.CPUTime)
	case MetricMemory:
		return float64(u.Memory)
	case MetricDisk:
		return float64(u.Disk)
	case MetricTasks:
		return float64(u.Tasks)
	}
	return 0
}

// Last returns the latest sample for a domain.
func (m *Monitor) Last(domain string) (Sample, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := m.series[domain]
	if len(buf) == 0 {
		return Sample{}, false
	}
	return buf[len(buf)-1], true
}

// Window returns a copy of the retained samples for a domain.
func (m *Monitor) Window(domain string) []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := m.series[domain]
	out := make([]Sample, len(buf))
	copy(out, buf)
	return out
}

// Domains lists domains with samples, sorted.
func (m *Monitor) Domains() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.series))
	for id := range m.series {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Aggregate summarizes a metric over the retained window.
type Aggregate struct {
	Avg, Max, Min float64
	Samples       int
}

// Summarize aggregates a metric for a domain over its window.
func (m *Monitor) Summarize(domain string, metric Metric) Aggregate {
	window := m.Window(domain)
	if len(window) == 0 {
		return Aggregate{}
	}
	agg := Aggregate{Min: metricValue(metric, window[0].Usage), Samples: len(window)}
	var sum float64
	for _, s := range window {
		v := metricValue(metric, s.Usage)
		sum += v
		if v > agg.Max {
			agg.Max = v
		}
		if v < agg.Min {
			agg.Min = v
		}
	}
	agg.Avg = sum / float64(len(window))
	return agg
}

// NodeUsage reports node-level capacity for placement decisions: used and
// total CPU millicores and memory bytes.
func (m *Monitor) NodeUsage() (cpuUsed, cpuTotal vjvm.Millicores, memUsed, memTotal int64) {
	return m.vm.UsedCapacity(), m.vm.Capacity(), m.vm.MemoryUsed(), m.vm.MemoryCapacity()
}

// Breach is one active threshold breach: rule r has been over its limit on
// domain since Since.
type Breach struct {
	Rule   string
	Domain string
	Since  time.Duration
}

// Breaches lists the currently active threshold breaches, sorted by rule
// then domain.
func (m *Monitor) Breaches() []Breach {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Breach
	for key, active := range m.inBreach {
		if !active {
			continue
		}
		i := strIndexAfterSlash(key)
		b := Breach{Rule: key[:max(i-1, 0)], Domain: key[i:], Since: m.breachAt[key]}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// Provider exposes the monitor as a metrics attribute source: each
// domain's latest sample (CPU rate/time, memory, disk, tasks) plus the
// active threshold breaches — the "monitor:<node>" MBean.
func (m *Monitor) Provider() func() map[string]any {
	return func() map[string]any {
		out := make(map[string]any)
		for _, domain := range m.Domains() {
			s, ok := m.Last(domain)
			if !ok {
				continue
			}
			out[domain+".cpuRate"] = int64(s.Usage.CPURate)
			out[domain+".cpuTimeNs"] = int64(s.Usage.CPUTime)
			out[domain+".memory"] = s.Usage.Memory
			out[domain+".disk"] = s.Usage.Disk
			out[domain+".tasks"] = int64(s.Usage.Tasks)
			out[domain+".sampledAtNs"] = int64(s.At)
		}
		breaches := m.Breaches()
		out["breaches"] = int64(len(breaches))
		for _, b := range breaches {
			out["breach."+b.Rule+"/"+b.Domain] = int64(b.Since)
		}
		return out
	}
}
