package monitor

import (
	"testing"
	"time"

	"dosgi/internal/sim"
	"dosgi/internal/vjvm"
)

func setup(t *testing.T, opts ...Option) (*sim.Engine, *vjvm.VJVM, *Monitor) {
	t.Helper()
	eng := sim.New(1)
	vm := vjvm.New(eng, vjvm.WithCapacity(1000))
	m := New(eng, vm, opts...)
	return eng, vm, m
}

func TestSamplingSeries(t *testing.T) {
	eng, vm, m := setup(t, WithInterval(10*time.Millisecond), WithWindow(5))
	if _, err := vm.CreateDomain("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Submit("a", time.Second, nil); err != nil {
		t.Fatal(err)
	}
	m.Start()
	eng.RunFor(100 * time.Millisecond)
	window := m.Window("a")
	if len(window) != 5 {
		t.Fatalf("window = %d samples, want capped at 5", len(window))
	}
	last, ok := m.Last("a")
	if !ok || last.Usage.CPURate != 1000 {
		t.Fatalf("last = %+v, %v", last, ok)
	}
	if ds := m.Domains(); len(ds) != 1 || ds[0] != "a" {
		t.Fatalf("Domains = %v", ds)
	}
	m.Stop()
	at := last.At
	eng.RunFor(100 * time.Millisecond)
	if l2, _ := m.Last("a"); l2.At != at {
		t.Fatal("sampling continued after Stop")
	}
}

func TestSummarize(t *testing.T) {
	eng, vm, m := setup(t, WithInterval(10*time.Millisecond))
	d, err := vm.CreateDomain("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(100); err != nil {
		t.Fatal(err)
	}
	m.Start()
	eng.RunFor(50 * time.Millisecond)
	agg := m.Summarize("a", MetricMemory)
	if agg.Samples == 0 || agg.Avg != 100 || agg.Max != 100 || agg.Min != 100 {
		t.Fatalf("agg = %+v", agg)
	}
	if empty := m.Summarize("ghost", MetricMemory); empty.Samples != 0 {
		t.Fatalf("ghost agg = %+v", empty)
	}
}

func TestThresholdRuleSustain(t *testing.T) {
	eng, vm, m := setup(t, WithInterval(10*time.Millisecond))
	if _, err := vm.CreateDomain("hog"); err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.OnEvent(func(ev Event) { events = append(events, ev) })
	m.AddRule(Rule{
		Name:    "cpu-hog",
		Metric:  MetricCPURate,
		Above:   500,
		Sustain: 50 * time.Millisecond,
	})
	m.Start()

	// Idle: no events.
	eng.RunFor(100 * time.Millisecond)
	if len(events) != 0 {
		t.Fatalf("events while idle: %v", events)
	}

	// Hog the CPU continuously: breach after ~sustain.
	breachStart := eng.Now()
	if _, err := vm.Submit("hog", 10*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(200 * time.Millisecond)
	if len(events) != 1 {
		t.Fatalf("events = %v, want single breach", events)
	}
	ev := events[0]
	if !ev.Breached || ev.Domain != "hog" || ev.Rule != "cpu-hog" {
		t.Fatalf("event = %+v", ev)
	}
	sustainLatency := ev.At - breachStart
	if sustainLatency < 50*time.Millisecond || sustainLatency > 80*time.Millisecond {
		t.Fatalf("breach fired after %v, want ~50-70ms", sustainLatency)
	}

	// No repeat while still in breach.
	eng.RunFor(200 * time.Millisecond)
	if len(events) != 1 {
		t.Fatalf("repeated breach events: %v", events)
	}
}

func TestThresholdClearEvent(t *testing.T) {
	eng, vm, m := setup(t, WithInterval(10*time.Millisecond))
	if _, err := vm.CreateDomain("hog"); err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.OnEvent(func(ev Event) { events = append(events, ev) })
	m.AddRule(Rule{Name: "r", Metric: MetricCPURate, Above: 500})
	m.Start()

	if _, err := vm.Submit("hog", 100*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(300 * time.Millisecond)
	if len(events) != 2 {
		t.Fatalf("events = %+v, want breach+clear", events)
	}
	if !events[0].Breached || events[1].Breached {
		t.Fatalf("events = %+v", events)
	}
}

func TestBlipShorterThanSustainIgnored(t *testing.T) {
	eng, vm, m := setup(t, WithInterval(10*time.Millisecond))
	if _, err := vm.CreateDomain("a"); err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.OnEvent(func(ev Event) { events = append(events, ev) })
	m.AddRule(Rule{Name: "r", Metric: MetricCPURate, Above: 500, Sustain: 100 * time.Millisecond})
	m.Start()
	// 30ms of load, under the 100ms sustain.
	if _, err := vm.Submit("a", 30*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(300 * time.Millisecond)
	if len(events) != 0 {
		t.Fatalf("blip raised events: %v", events)
	}
}

func TestRuleScopedToDomain(t *testing.T) {
	eng, vm, m := setup(t, WithInterval(10*time.Millisecond))
	if _, err := vm.CreateDomain("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.CreateDomain("b"); err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.OnEvent(func(ev Event) { events = append(events, ev) })
	m.AddRule(Rule{Name: "r", Domain: "a", Metric: MetricTasks, Above: 0})
	m.Start()
	if _, err := vm.Submit("b", time.Second, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(50 * time.Millisecond)
	if len(events) != 0 {
		t.Fatalf("rule fired for wrong domain: %v", events)
	}
	if _, err := vm.Submit("a", time.Second, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(50 * time.Millisecond)
	if len(events) != 1 || events[0].Domain != "a" {
		t.Fatalf("events = %v", events)
	}
}

func TestNodeUsage(t *testing.T) {
	eng, vm, m := setup(t)
	_ = eng
	cpuUsed, cpuTotal, memUsed, memTotal := m.NodeUsage()
	if cpuUsed != 0 || cpuTotal != 1000 {
		t.Fatalf("cpu = %d/%d", cpuUsed, cpuTotal)
	}
	if memUsed != vm.BaseOverhead() || memTotal != vm.MemoryCapacity() {
		t.Fatalf("mem = %d/%d", memUsed, memTotal)
	}
}
