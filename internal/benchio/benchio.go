// Package benchio persists benchmark trajectories: JSON files in which
// every run APPENDS a timestamped point instead of overwriting the last
// one, so the committed file itself is the performance story — no need
// to walk `git log -p` to compare two eras.
//
// The file format is one Trajectory object. Files written before the
// trajectory format existed (a single bare point with the experiment
// name alongside) are migrated in place as the first run. Several tools
// may share one file — cmd/benchjson appends E10 sweeps and
// cmd/dosgi-load appends fixed-rate load runs to BENCH_remote.json —
// so a run whose experiment name differs from the file-level one
// records its own name on the run point.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Trajectory is one benchmark file: the experiment it tracks and every
// recorded run, oldest first.
type Trajectory struct {
	Experiment string     `json:"experiment"`
	Runs       []RunPoint `json:"runs"`
}

// RunPoint is one timestamped run. Durations inside Rows marshal as
// integer nanoseconds (time.Duration's JSON form). Experiment is set
// only when the run came from a different experiment than the
// file-level one.
type RunPoint struct {
	Generated  string         `json:"generated"`
	Experiment string         `json:"experiment,omitempty"`
	Params     map[string]any `json:"params"`
	Rows       any            `json:"rows"`
}

// Load reads a trajectory file, migrating the pre-trajectory
// single-point format in place. A missing file yields an empty
// trajectory and no error; a present-but-invalid file is an error (the
// caller should move it aside rather than silently losing history).
func Load(path string) (Trajectory, error) {
	var traj Trajectory
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return traj, nil
	}
	if err != nil {
		return traj, err
	}
	// Either the trajectory format, or a pre-trajectory file that was one
	// bare point with the experiment name alongside.
	var existing struct {
		Experiment string         `json:"experiment"`
		Runs       []RunPoint     `json:"runs"`
		Generated  string         `json:"generated"`
		Params     map[string]any `json:"params"`
		Rows       any            `json:"rows"`
	}
	if err := json.Unmarshal(data, &existing); err != nil {
		return traj, fmt.Errorf("%s: existing file is not valid JSON (%w); move it aside to start a fresh trajectory", path, err)
	}
	traj.Experiment = existing.Experiment
	switch {
	case len(existing.Runs) > 0:
		traj.Runs = existing.Runs
	case existing.Generated != "":
		traj.Runs = []RunPoint{{Generated: existing.Generated, Params: existing.Params, Rows: existing.Rows}}
	}
	return traj, nil
}

// Append loads the trajectory at path, appends one run stamped with the
// current UTC time, and writes the file back. The file-level experiment
// name is preserved once set; a run from a different experiment carries
// its own name instead of rewriting history. Returns the total run
// count after the append.
func Append(path, experiment string, params map[string]any, rows any) (int, error) {
	traj, err := Load(path)
	if err != nil {
		return 0, err
	}
	point := RunPoint{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Params:    params,
		Rows:      rows,
	}
	if traj.Experiment == "" {
		traj.Experiment = experiment
	} else if experiment != traj.Experiment {
		point.Experiment = experiment
	}
	traj.Runs = append(traj.Runs, point)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(traj.Runs), nil
}
