package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendCreatesAndGrows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	n, err := Append(path, "E10", map[string]any{"calls": 5}, []int{1, 2})
	if err != nil || n != 1 {
		t.Fatalf("first append: n=%d err=%v", n, err)
	}
	n, err = Append(path, "E10", map[string]any{"calls": 7}, []int{3})
	if err != nil || n != 2 {
		t.Fatalf("second append: n=%d err=%v", n, err)
	}
	traj, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Experiment != "E10" || len(traj.Runs) != 2 {
		t.Fatalf("trajectory = %+v", traj)
	}
	if traj.Runs[0].Generated == "" || traj.Runs[1].Params["calls"].(float64) != 7 {
		t.Fatalf("runs = %+v", traj.Runs)
	}
}

func TestAppendMigratesLegacySinglePoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	legacy := map[string]any{
		"experiment": "E10",
		"generated":  "2025-01-01T00:00:00Z",
		"params":     map[string]any{"calls": 1},
		"rows":       []int{9},
	}
	data, _ := json.Marshal(legacy)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Append(path, "E10", nil, []int{10})
	if err != nil || n != 2 {
		t.Fatalf("append over legacy: n=%d err=%v", n, err)
	}
	traj, _ := Load(path)
	if traj.Runs[0].Generated != "2025-01-01T00:00:00Z" {
		t.Fatalf("legacy point lost: %+v", traj.Runs)
	}
}

// A second tool appending to the same file keeps the file-level
// experiment and records its own name on the run.
func TestAppendForeignExperimentTagsRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if _, err := Append(path, "E10", nil, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path, "LoadFixedRate", nil, []int{2}); err != nil {
		t.Fatal(err)
	}
	traj, _ := Load(path)
	if traj.Experiment != "E10" {
		t.Fatalf("file-level experiment rewritten to %q", traj.Experiment)
	}
	if traj.Runs[0].Experiment != "" || traj.Runs[1].Experiment != "LoadFixedRate" {
		t.Fatalf("run tags = %q, %q", traj.Runs[0].Experiment, traj.Runs[1].Experiment)
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt file loaded without error")
	}
}
