package san

import "dosgi/internal/security"

// SecureClient wraps a Store with per-subject permission checks — the
// filesystem half of the paper's SecurityManager-based isolation.
type SecureClient struct {
	store   *Store
	subject string
	policy  *security.Policy
}

// NewSecureClient builds a client acting as subject under policy.
func NewSecureClient(store *Store, subject string, policy *security.Policy) *SecureClient {
	return &SecureClient{store: store, subject: subject, policy: policy}
}

// Put writes data, requiring the write permission on path.
func (c *SecureClient) Put(path string, data []byte) (int64, error) {
	if err := c.policy.Check(c.subject, security.FilePermission(path, security.ActionWrite)); err != nil {
		return 0, err
	}
	return c.store.Put(path, data), nil
}

// Get reads data, requiring the read permission on path.
func (c *SecureClient) Get(path string) ([]byte, error) {
	if err := c.policy.Check(c.subject, security.FilePermission(path, security.ActionRead)); err != nil {
		return nil, err
	}
	return c.store.Get(path)
}

// Delete removes an object, requiring the delete permission on path.
func (c *SecureClient) Delete(path string) error {
	if err := c.policy.Check(c.subject, security.FilePermission(path, security.ActionDelete)); err != nil {
		return err
	}
	c.store.Delete(path)
	return nil
}

// List lists under prefix, requiring the read permission on the prefix.
func (c *SecureClient) List(prefix string) ([]string, error) {
	if err := c.policy.Check(c.subject, security.FilePermission(prefix, security.ActionRead)); err != nil {
		return nil, err
	}
	return c.store.List(prefix), nil
}
