package san

import (
	"errors"
	"testing"
	"time"

	"dosgi/internal/security"
	"dosgi/internal/sim"
)

func TestPutGetDelete(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	if v := s.Put("a/b", []byte("one")); v != 1 {
		t.Fatalf("version = %d", v)
	}
	if v := s.Put("a/b", []byte("two")); v != 2 {
		t.Fatalf("version = %d", v)
	}
	data, err := s.Get("a/b")
	if err != nil || string(data) != "two" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if s.Version("a/b") != 2 {
		t.Fatal("Version mismatch")
	}
	s.Delete("a/b")
	if _, err := s.Get("a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if s.Version("a/b") != 0 {
		t.Fatal("version of deleted object")
	}
}

func TestGetIsCopy(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	s.Put("k", []byte("abc"))
	data, _ := s.Get("k")
	data[0] = 'X'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("store aliased returned slice")
	}
}

func TestPutCopiesInput(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("store aliased caller slice")
	}
}

func TestList(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	s.Put("inst/a/snap", nil)
	s.Put("inst/b/snap", nil)
	s.Put("other/x", nil)
	got := s.List("inst/")
	if len(got) != 2 || got[0] != "inst/a/snap" || got[1] != "inst/b/snap" {
		t.Fatalf("List = %v", got)
	}
	if all := s.List(""); len(all) != 3 {
		t.Fatalf("List all = %v", all)
	}
}

func TestAsyncLatency(t *testing.T) {
	eng := sim.New(1)
	// 1 KB/s bandwidth + 1ms latency: 1000 bytes => 1ms + 1s.
	s := NewStore(eng, WithAccessLatency(time.Millisecond), WithBandwidth(1000))
	payload := make([]byte, 1000)
	var wroteAt time.Duration
	var readAt time.Duration
	s.PutAsync("big", payload, func(v int64) {
		wroteAt = eng.Now()
		if v != 1 {
			t.Errorf("version = %d", v)
		}
		s.GetAsync("big", func(data []byte, err error) {
			readAt = eng.Now()
			if err != nil || len(data) != 1000 {
				t.Errorf("GetAsync = %d bytes, %v", len(data), err)
			}
		})
	})
	eng.Run()
	want := time.Second + time.Millisecond
	if wroteAt != want {
		t.Fatalf("write completed at %v, want %v", wroteAt, want)
	}
	if readAt != 2*want {
		t.Fatalf("read completed at %v, want %v", readAt, 2*want)
	}
}

func TestGetAsyncMissing(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	var gotErr error
	called := false
	s.GetAsync("missing", func(data []byte, err error) {
		called = true
		gotErr = err
	})
	eng.Run()
	if !called || !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("called=%v err=%v", called, gotErr)
	}
}

func TestStats(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	s.Put("a", make([]byte, 10))
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	s.Delete("a")
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Deletes != 1 || st.BytesWrite != 10 || st.BytesRead != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSecureClient(t *testing.T) {
	eng := sim.New(1)
	s := NewStore(eng)
	policy := security.NewPolicy(false)
	policy.Grant("tenant-a",
		security.FilePermission("data/tenant-a/*", security.ActionRead, security.ActionWrite, security.ActionDelete))
	client := NewSecureClient(s, "tenant-a", policy)

	if _, err := client.Put("data/tenant-a/db", []byte("x")); err != nil {
		t.Fatalf("own write denied: %v", err)
	}
	if _, err := client.Get("data/tenant-a/db"); err != nil {
		t.Fatalf("own read denied: %v", err)
	}
	if _, err := client.Put("data/tenant-b/db", []byte("x")); err == nil {
		t.Fatal("foreign write allowed")
	}
	if _, err := client.Get("data/tenant-b/db"); err == nil {
		t.Fatal("foreign read allowed")
	}
	if err := client.Delete("data/tenant-a/db"); err != nil {
		t.Fatalf("own delete denied: %v", err)
	}
	if _, err := client.List("data/tenant-a/"); err != nil {
		t.Fatalf("own list denied: %v", err)
	}
	if _, err := client.List("data/"); err == nil {
		t.Fatal("broad list allowed")
	}
}

func TestJoin(t *testing.T) {
	if got := Join("instances", "t-a", "snap"); got != "instances/t-a/snap" {
		t.Fatalf("Join = %q", got)
	}
}
