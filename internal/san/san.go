// Package san simulates the storage substrate the paper assumes: "We
// assume a underlying SAN or distributed filesystem to ensure that data
// written by each node is accessible globally" (§3.2). Every node sees the
// same object namespace; access costs a configurable latency plus a
// per-byte transfer time, which is what makes checkpoint/restore times in
// the migration experiments meaningful.
package san

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dosgi/internal/clock"
)

// ErrNotFound is returned when reading a missing object.
var ErrNotFound = errors.New("san: object not found")

// Option configures a Store.
type Option func(*Store)

// WithAccessLatency sets the fixed per-operation latency for async access
// (default 200µs).
func WithAccessLatency(d time.Duration) Option {
	return func(s *Store) { s.accessLatency = d }
}

// WithBandwidth sets the transfer bandwidth in bytes/second used by async
// access (default 1 GB/s).
func WithBandwidth(bytesPerSec int64) Option {
	return func(s *Store) { s.bandwidth = bytesPerSec }
}

// Stats counts storage activity.
type Stats struct {
	Reads      int64
	Writes     int64
	Deletes    int64
	BytesRead  int64
	BytesWrite int64
}

type object struct {
	data    []byte
	version int64
	modAt   time.Duration
}

// Store is a globally visible object store.
type Store struct {
	sched clock.Scheduler

	mu            sync.Mutex
	objects       map[string]*object
	accessLatency time.Duration
	bandwidth     int64
	stats         Stats
	// lastPutDue serializes async writes per path: a later PutAsync to the
	// same object never completes before an earlier one, whatever their
	// sizes.
	lastPutDue map[string]time.Duration
}

// NewStore builds a store driven by sched.
func NewStore(sched clock.Scheduler, opts ...Option) *Store {
	s := &Store{
		sched:         sched,
		objects:       make(map[string]*object),
		accessLatency: 200 * time.Microsecond,
		bandwidth:     1 << 30,
		lastPutDue:    make(map[string]time.Duration),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Put writes data at path synchronously (control-plane convenience; the
// latency-accounted path is PutAsync). It returns the new version.
func (s *Store) Put(path string, data []byte) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(path, data)
}

func (s *Store) putLocked(path string, data []byte) int64 {
	cp := make([]byte, len(data))
	copy(cp, data)
	obj, ok := s.objects[path]
	if !ok {
		obj = &object{}
		s.objects[path] = obj
	}
	obj.data = cp
	obj.version++
	obj.modAt = s.sched.Now()
	s.stats.Writes++
	s.stats.BytesWrite += int64(len(data))
	return obj.version
}

// Get reads the object at path synchronously.
func (s *Store) Get(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(path)
}

func (s *Store) getLocked(path string) ([]byte, error) {
	obj, ok := s.objects[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	cp := make([]byte, len(obj.data))
	copy(cp, obj.data)
	s.stats.Reads++
	s.stats.BytesRead += int64(len(obj.data))
	return cp, nil
}

// Version returns the object's version (0 when absent).
func (s *Store) Version(path string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.objects[path]; ok {
		return obj.version
	}
	return 0
}

// Delete removes the object at path.
func (s *Store) Delete(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[path]; ok {
		delete(s.objects, path)
		s.stats.Deletes++
	}
}

// List returns the paths under prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for p := range s.objects {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// transferTime computes latency + size/bandwidth.
func (s *Store) transferTime(size int) time.Duration {
	d := s.accessLatency
	if s.bandwidth > 0 {
		d += time.Duration(float64(size) / float64(s.bandwidth) * float64(time.Second))
	}
	return d
}

// PutAsync writes with storage latency accounted; done fires on the event
// loop when the write is durable. Writes to the same path complete in call
// order.
func (s *Store) PutAsync(path string, data []byte, done func(version int64)) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	now := s.sched.Now()
	due := now + s.transferTime(len(data))
	if prev, ok := s.lastPutDue[path]; ok && due <= prev {
		due = prev + time.Nanosecond
	}
	s.lastPutDue[path] = due
	s.mu.Unlock()
	s.sched.After(due-now, func() {
		s.mu.Lock()
		v := s.putLocked(path, cp)
		s.mu.Unlock()
		if done != nil {
			done(v)
		}
	})
}

// GetAsync reads with storage latency accounted.
func (s *Store) GetAsync(path string, done func(data []byte, err error)) {
	s.mu.Lock()
	size := 0
	if obj, ok := s.objects[path]; ok {
		size = len(obj.data)
	}
	d := s.transferTime(size)
	s.mu.Unlock()
	s.sched.After(d, func() {
		s.mu.Lock()
		data, err := s.getLocked(path)
		s.mu.Unlock()
		if done != nil {
			done(data, err)
		}
	})
}

// Stats returns a copy of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Join builds a namespaced path ("instances/tenant-a/snapshot").
func Join(parts ...string) string {
	return strings.Join(parts, "/")
}
