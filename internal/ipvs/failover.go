package ipvs

import (
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/netsim"
)

// FailoverConfig tunes the active/backup director pair.
type FailoverConfig struct {
	// ProbeInterval is how often the backup probes the active director
	// through the VIP (default 100ms).
	ProbeInterval time.Duration
	// FailAfter is the number of consecutive unanswered probes before
	// takeover (default 3).
	FailAfter int
	// TakeoverDelay models ARP propagation during VIP movement (default
	// 50ms).
	TakeoverDelay time.Duration
	// OnTakeover is invoked once the backup owns the VIP and serves
	// traffic.
	OnTakeover func()
}

func (c *FailoverConfig) applyDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.TakeoverDelay <= 0 {
		c.TakeoverDelay = 50 * time.Millisecond
	}
}

// Failover runs a backup director that watches the active one via
// VIP-directed probes and takes the address over when the active stops
// answering — the "fault tolerant IP virtual server" of Figure 6.
type Failover struct {
	sched  clock.Scheduler
	net    *netsim.Network
	backup *VirtualServer
	cfg    FailoverConfig

	mu        sync.Mutex
	running   bool
	active    bool // we became the active director
	misses    int
	lastOKSeq int64
	seq       int64
	timer     clock.Timer
	probeAddr netsim.Addr
}

// NewFailover wires a backup director. The backup's VirtualServer must be
// configured with the same VIP and backends but not started; Failover
// starts it after takeover.
func NewFailover(sched clock.Scheduler, net *netsim.Network, backup *VirtualServer, cfg FailoverConfig) *Failover {
	cfg.applyDefaults()
	return &Failover{sched: sched, net: net, backup: backup, cfg: cfg}
}

// Start begins monitoring the active director.
func (f *Failover) Start() error {
	nic, ok := f.net.NIC(f.backup.NodeID())
	if !ok {
		return ErrNoBackends
	}
	ips := nic.OwnedIPs()
	if len(ips) == 0 {
		return netsim.ErrIPNotOwned
	}
	f.mu.Lock()
	f.probeAddr = netsim.Addr{IP: ips[0], Port: f.backup.VIP().Port + 10001}
	probeAddr := f.probeAddr
	f.mu.Unlock()
	if err := nic.Listen(probeAddr, f.handleReply); err != nil {
		return err
	}
	f.mu.Lock()
	f.running = true
	f.timer = f.sched.Every(f.cfg.ProbeInterval, f.probe)
	f.mu.Unlock()
	return nil
}

// Stop halts monitoring (the backup director keeps serving if it already
// took over).
func (f *Failover) Stop() {
	f.mu.Lock()
	f.running = false
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
	probeAddr := f.probeAddr
	f.mu.Unlock()
	if nic, ok := f.net.NIC(f.backup.NodeID()); ok {
		nic.Close(probeAddr)
	}
}

// IsActive reports whether the backup has taken over.
func (f *Failover) IsActive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active
}

func (f *Failover) probe() {
	f.mu.Lock()
	if !f.running || f.active {
		f.mu.Unlock()
		return
	}
	f.seq++
	seq := f.seq
	probeAddr := f.probeAddr
	vipAdmin := netsim.Addr{IP: f.backup.VIP().IP, Port: f.backup.VIP().Port + 10000}
	f.mu.Unlock()

	if nic, ok := f.net.NIC(f.backup.NodeID()); ok {
		_ = nic.Send(probeAddr, vipAdmin, Probe{ReplyTo: probeAddr, Seq: seq}, 64)
	}
	f.sched.After(f.cfg.ProbeInterval/2, func() {
		f.mu.Lock()
		if !f.running || f.active || f.lastOKSeq >= seq {
			f.mu.Unlock()
			return
		}
		f.misses++
		if f.misses < f.cfg.FailAfter {
			f.mu.Unlock()
			return
		}
		f.active = true
		f.mu.Unlock()
		f.takeover()
	})
}

func (f *Failover) handleReply(msg netsim.Message) {
	reply, ok := msg.Payload.(ProbeReply)
	if !ok {
		return
	}
	f.mu.Lock()
	if reply.Seq > f.lastOKSeq {
		f.lastOKSeq = reply.Seq
	}
	f.misses = 0
	f.mu.Unlock()
}

func (f *Failover) takeover() {
	vip := f.backup.VIP()
	f.net.MoveIP(vip.IP, f.backup.NodeID(), f.cfg.TakeoverDelay, func(err error) {
		if err != nil {
			return
		}
		if err := f.backup.Start(); err != nil {
			return
		}
		if f.cfg.OnTakeover != nil {
			f.cfg.OnTakeover()
		}
	})
}
