package ipvs

import (
	"fmt"
	"testing"
	"time"

	"dosgi/internal/netsim"
	"dosgi/internal/sim"
)

// backend binds an echo server that answers probes and counts requests.
type backend struct {
	addr   netsim.Addr
	served int
}

func newBackend(t *testing.T, eng *sim.Engine, net *netsim.Network, nodeID string, addr netsim.Addr) *backend {
	t.Helper()
	nic, ok := net.NIC(nodeID)
	if !ok {
		nic = net.AttachNode(nodeID)
	}
	b := &backend{addr: addr}
	if err := nic.Listen(addr, func(msg netsim.Message) {
		if p, isProbe := msg.Payload.(Probe); isProbe {
			_ = nic.Send(addr, p.ReplyTo, ProbeReply{Seq: p.Seq}, 64)
			return
		}
		b.served++
		// Echo the payload back to the client.
		_ = nic.Send(addr, msg.From, msg.Payload, 64)
	}); err != nil {
		t.Fatal(err)
	}
	return b
}

type fixture struct {
	eng      *sim.Engine
	net      *netsim.Network
	director *VirtualServer
	backends []*backend
	client   *netsim.NIC
	clientIP netsim.IP
	replies  int
}

func newFixture(t *testing.T, kind SchedulerKind, nBackends int, opts ...Option) *fixture {
	t.Helper()
	eng := sim.New(1)
	net := netsim.NewNetwork(eng, netsim.WithLatency(time.Millisecond))
	fx := &fixture{eng: eng, net: net, clientIP: "10.0.0.99"}

	// Director node with VIP.
	net.AttachNode("director")
	if err := net.AssignIP("10.0.0.1", "director"); err != nil {
		t.Fatal(err)
	}
	vip := netsim.Addr{IP: "10.0.0.1", Port: 80}
	fx.director = New(eng, net, "director", vip, kind, opts...)

	for i := 0; i < nBackends; i++ {
		node := fmt.Sprintf("server%d", i)
		ip := netsim.IP(fmt.Sprintf("10.0.1.%d", i+1))
		net.AttachNode(node)
		if err := net.AssignIP(ip, node); err != nil {
			t.Fatal(err)
		}
		addr := netsim.Addr{IP: ip, Port: 8080}
		fx.backends = append(fx.backends, newBackend(t, eng, net, node, addr))
		fx.director.AddServer(addr, 1)
	}

	// Client.
	fx.client = net.AttachNode("client")
	if err := net.AssignIP(fx.clientIP, "client"); err != nil {
		t.Fatal(err)
	}
	if err := fx.client.Listen(netsim.Addr{IP: fx.clientIP, Port: 5000}, func(netsim.Message) {
		fx.replies++
	}); err != nil {
		t.Fatal(err)
	}
	if err := fx.director.Start(); err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) sendRequests(n int) {
	for i := 0; i < n; i++ {
		_ = fx.client.Send(
			netsim.Addr{IP: fx.clientIP, Port: 5000},
			fx.director.VIP(),
			fmt.Sprintf("req-%d", i), 64)
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	fx := newFixture(t, RoundRobin, 3)
	fx.sendRequests(30)
	fx.eng.RunFor(time.Second)
	for i, b := range fx.backends {
		if b.served != 10 {
			t.Errorf("backend %d served %d, want 10", i, b.served)
		}
	}
	if fx.replies != 30 {
		t.Errorf("client got %d replies, want 30 (direct-routing responses)", fx.replies)
	}
	st := fx.director.Stats()
	if st.Forwarded != 30 || st.NoBackend != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWeightedRoundRobin(t *testing.T) {
	fx := newFixture(t, WeightedRoundRobin, 3)
	// Reweight: 3, 2, 1.
	fx.director.AddServer(fx.backends[0].addr, 3)
	fx.director.AddServer(fx.backends[1].addr, 2)
	fx.director.AddServer(fx.backends[2].addr, 1)
	fx.sendRequests(60)
	fx.eng.RunFor(time.Second)
	if fx.backends[0].served != 30 || fx.backends[1].served != 20 || fx.backends[2].served != 10 {
		t.Errorf("served = %d/%d/%d, want 30/20/10",
			fx.backends[0].served, fx.backends[1].served, fx.backends[2].served)
	}
}

func TestSourceHashAffinity(t *testing.T) {
	fx := newFixture(t, SourceHash, 4)
	fx.sendRequests(20)
	fx.eng.RunFor(time.Second)
	nonZero := 0
	for _, b := range fx.backends {
		if b.served == 20 {
			nonZero++
		} else if b.served != 0 {
			t.Errorf("source-hash split traffic from one client: %d", b.served)
		}
	}
	if nonZero != 1 {
		t.Errorf("expected exactly one backend to serve the client, got %d", nonZero)
	}
}

func TestLeastConnections(t *testing.T) {
	fx := newFixture(t, LeastConnections, 2, WithConnTTL(10*time.Second))
	// Saturate backend 0 with 5 tracked connections, then send 5 more:
	// they must all land on backend 1 (0 active).
	fx.sendRequests(1)
	fx.eng.RunFor(10 * time.Millisecond)
	// After 1 request: one backend has 1 active conn. Send 2 more:
	// first goes to the idle one, second to either (tie at 1).
	fx.sendRequests(9)
	fx.eng.RunFor(100 * time.Millisecond)
	diff := fx.backends[0].served - fx.backends[1].served
	if diff < -1 || diff > 1 {
		t.Errorf("least-connections imbalance: %d vs %d", fx.backends[0].served, fx.backends[1].served)
	}
}

func TestNoBackendCounted(t *testing.T) {
	fx := newFixture(t, RoundRobin, 1)
	fx.director.SetHealthy(fx.backends[0].addr, false)
	fx.sendRequests(5)
	fx.eng.RunFor(time.Second)
	st := fx.director.Stats()
	if st.NoBackend != 5 || st.Forwarded != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHealthCheckMarksDownAndUp(t *testing.T) {
	fx := newFixture(t, RoundRobin, 2)
	fx.eng.RunFor(500 * time.Millisecond) // probes flowing, all healthy
	for _, s := range fx.director.Servers() {
		if !s.Healthy {
			t.Fatalf("backend %v unhealthy at start", s.Addr)
		}
	}

	// Kill server0's node.
	nic, _ := fx.net.NIC("server0")
	nic.SetUp(false)
	fx.eng.RunFor(time.Second)
	servers := fx.director.Servers()
	downCount := 0
	for _, s := range servers {
		if !s.Healthy {
			downCount++
		}
	}
	if downCount != 1 {
		t.Fatalf("down backends = %d, want 1 (%+v)", downCount, servers)
	}

	// Traffic only reaches the healthy one.
	before := fx.backends[1].served
	fx.sendRequests(10)
	fx.eng.RunFor(time.Second)
	if fx.backends[1].served-before != 10 {
		t.Errorf("healthy backend served %d of 10", fx.backends[1].served-before)
	}

	// Recovery.
	nic.SetUp(true)
	fx.eng.RunFor(time.Second)
	for _, s := range fx.director.Servers() {
		if !s.Healthy {
			t.Errorf("backend %v did not recover", s.Addr)
		}
	}
}

func TestDirectorFailover(t *testing.T) {
	fx := newFixture(t, RoundRobin, 2)

	// Backup director on its own node, same VIP and backends.
	fx.net.AttachNode("backup")
	if err := fx.net.AssignIP("10.0.0.2", "backup"); err != nil {
		t.Fatal(err)
	}
	backupVS := New(fx.eng, fx.net, "backup", fx.director.VIP(), RoundRobin)
	for _, b := range fx.backends {
		backupVS.AddServer(b.addr, 1)
	}
	tookOver := false
	var tookOverAt time.Duration
	fo := NewFailover(fx.eng, fx.net, backupVS, FailoverConfig{
		OnTakeover: func() {
			tookOver = true
			tookOverAt = fx.eng.Now()
		},
	})
	if err := fo.Start(); err != nil {
		t.Fatal(err)
	}
	fx.eng.RunFor(time.Second)
	if fo.IsActive() {
		t.Fatal("backup took over while active was healthy")
	}

	// Crash the active director node.
	crashAt := fx.eng.Now()
	fx.director.Stop()
	dnic, _ := fx.net.NIC("director")
	dnic.SetUp(false)
	fx.net.ReleaseIP("10.0.0.1") // node dead: address unclaimed

	fx.eng.RunFor(2 * time.Second)
	if !tookOver || !fo.IsActive() {
		t.Fatal("backup never took over")
	}
	takeoverTime := tookOverAt - crashAt
	if takeoverTime > 1500*time.Millisecond {
		t.Fatalf("takeover took %v", takeoverTime)
	}

	// Traffic flows again through the backup.
	before := fx.replies
	fx.sendRequests(6)
	fx.eng.RunFor(time.Second)
	if fx.replies-before != 6 {
		t.Fatalf("replies after failover = %d of 6", fx.replies-before)
	}
	if owner, _ := fx.net.OwnerOf("10.0.0.1"); owner != "backup" {
		t.Fatalf("VIP owner = %s", owner)
	}
}

func TestRemoveServer(t *testing.T) {
	fx := newFixture(t, RoundRobin, 2)
	fx.director.RemoveServer(fx.backends[0].addr)
	fx.sendRequests(4)
	fx.eng.RunFor(time.Second)
	if fx.backends[0].served != 0 || fx.backends[1].served != 4 {
		t.Errorf("served = %d/%d", fx.backends[0].served, fx.backends[1].served)
	}
}

func TestStopUnbinds(t *testing.T) {
	fx := newFixture(t, RoundRobin, 1)
	fx.director.Stop()
	fx.sendRequests(3)
	fx.eng.RunFor(time.Second)
	if fx.backends[0].served != 0 {
		t.Error("stopped director forwarded traffic")
	}
	// Restartable.
	if err := fx.director.Start(); err != nil {
		t.Fatal(err)
	}
	fx.sendRequests(3)
	fx.eng.RunFor(time.Second)
	if fx.backends[0].served != 3 {
		t.Errorf("served after restart = %d", fx.backends[0].served)
	}
}
