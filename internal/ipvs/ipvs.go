// Package ipvs reconstructs the fault-tolerant IP virtual server of the
// paper's Figure 6: a director owns a virtual IP, schedules inbound
// requests across real servers (round-robin, weighted round-robin,
// least-connections or source-hash), health-checks the backends, and an
// active/backup director pair performs VIP takeover on failure. "The ipvs
// will be responsible to ensure the availability of the IP address to the
// Internet and redirect the service requests to the node currently running
// the service … this setting allows also to scale-up the services" (§3.2).
//
// Forwarding uses direct-routing semantics: the director re-sends the
// request to the chosen backend preserving the client source address, so
// the backend replies straight to the client and needs no ipvs awareness.
package ipvs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/netsim"
)

// SchedulerKind selects the backend scheduling discipline.
type SchedulerKind int

// Scheduling disciplines.
const (
	RoundRobin SchedulerKind = iota + 1
	WeightedRoundRobin
	LeastConnections
	SourceHash
)

func (k SchedulerKind) String() string {
	switch k {
	case RoundRobin:
		return "rr"
	case WeightedRoundRobin:
		return "wrr"
	case LeastConnections:
		return "lc"
	case SourceHash:
		return "sh"
	}
	return "unknown"
}

// Probe is the health-check request the director sends to backends; any
// cooperating service answers with ProbeReply to Probe.ReplyTo.
type Probe struct {
	ReplyTo netsim.Addr
	Seq     int64
}

// ProbeReply answers a Probe.
type ProbeReply struct {
	Seq int64
}

// ErrNoBackends is recorded when a request arrives with no healthy server.
var ErrNoBackends = errors.New("ipvs: no healthy backends")

// Stats counts director activity.
type Stats struct {
	Forwarded int64
	NoBackend int64
	PerServer map[string]int64
}

// ServerInfo describes one real server.
type ServerInfo struct {
	Addr        netsim.Addr
	Weight      int
	Healthy     bool
	ActiveConns int
	Served      int64
}

type realServer struct {
	addr      netsim.Addr
	weight    int
	healthy   bool
	active    int
	served    int64
	current   int // smooth-WRR accumulator
	fails     int
	oks       int
	probeSeq  int64
	lastOKSeq int64
}

// Option configures a VirtualServer.
type Option func(*VirtualServer)

// WithConnTTL sets how long a forwarded request counts as an active
// connection for least-connections scheduling (default 100ms).
func WithConnTTL(d time.Duration) Option {
	return func(v *VirtualServer) { v.connTTL = d }
}

// WithHealthInterval sets the probe period (default 100ms; 0 disables
// health checking — servers stay as marked).
func WithHealthInterval(d time.Duration) Option {
	return func(v *VirtualServer) { v.healthEvery = d }
}

// WithHealthTimeout sets how long a probe may remain unanswered (default
// half the interval).
func WithHealthTimeout(d time.Duration) Option {
	return func(v *VirtualServer) { v.healthTimeout = d }
}

// WithFailAfter sets consecutive probe failures before a server is marked
// down (default 2).
func WithFailAfter(n int) Option {
	return func(v *VirtualServer) { v.failAfter = n }
}

// WithRiseAfter sets consecutive probe successes before a server is marked
// up again (default 2).
func WithRiseAfter(n int) Option {
	return func(v *VirtualServer) { v.riseAfter = n }
}

// VirtualServer is an ipvs director instance on one node.
type VirtualServer struct {
	sched  clock.Scheduler
	net    *netsim.Network
	nodeID string
	vip    netsim.Addr
	admin  netsim.Addr // health-probe reply endpoint
	kind   SchedulerKind

	mu            sync.Mutex
	servers       []*realServer
	rrIndex       int
	running       bool
	connTTL       time.Duration
	healthEvery   time.Duration
	healthTimeout time.Duration
	failAfter     int
	riseAfter     int
	healthTimer   clock.Timer
	stats         Stats
}

// New builds a director for vip on nodeID. The node must already own the
// VIP (or acquire it via takeover) before Start can bind.
func New(sched clock.Scheduler, net *netsim.Network, nodeID string, vip netsim.Addr, kind SchedulerKind, opts ...Option) *VirtualServer {
	v := &VirtualServer{
		sched:       sched,
		net:         net,
		nodeID:      nodeID,
		vip:         vip,
		admin:       netsim.Addr{IP: netsim.IPAny, Port: vip.Port + 10000},
		kind:        kind,
		connTTL:     100 * time.Millisecond,
		healthEvery: 100 * time.Millisecond,
		failAfter:   2,
		riseAfter:   2,
	}
	v.stats.PerServer = make(map[string]int64)
	for _, opt := range opts {
		opt(v)
	}
	if v.healthTimeout <= 0 {
		v.healthTimeout = v.healthEvery / 2
	}
	return v
}

// VIP returns the virtual address.
func (v *VirtualServer) VIP() netsim.Addr { return v.vip }

// NodeID returns the hosting node.
func (v *VirtualServer) NodeID() string { return v.nodeID }

// AddServer registers a real server with the given weight (>=1).
func (v *VirtualServer) AddServer(addr netsim.Addr, weight int) {
	if weight < 1 {
		weight = 1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.servers {
		if s.addr == addr {
			s.weight = weight
			return
		}
	}
	v.servers = append(v.servers, &realServer{addr: addr, weight: weight, healthy: true})
}

// RemoveServer drops a real server.
func (v *VirtualServer) RemoveServer(addr netsim.Addr) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, s := range v.servers {
		if s.addr == addr {
			v.servers = append(v.servers[:i], v.servers[i+1:]...)
			return
		}
	}
}

// SetHealthy force-marks a server (useful without health checking).
func (v *VirtualServer) SetHealthy(addr netsim.Addr, healthy bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.servers {
		if s.addr == addr {
			s.healthy = healthy
			s.fails, s.oks = 0, 0
		}
	}
}

// Servers lists backend states sorted by address.
func (v *VirtualServer) Servers() []ServerInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]ServerInfo, 0, len(v.servers))
	for _, s := range v.servers {
		out = append(out, ServerInfo{
			Addr: s.addr, Weight: s.weight, Healthy: s.healthy,
			ActiveConns: s.active, Served: s.served,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.String() < out[j].Addr.String() })
	return out
}

// Start binds the VIP and begins forwarding and health checking.
func (v *VirtualServer) Start() error {
	nic, ok := v.net.NIC(v.nodeID)
	if !ok {
		return fmt.Errorf("ipvs: node %q not attached", v.nodeID)
	}
	if err := nic.Listen(v.vip, v.handleRequest); err != nil {
		return err
	}
	if err := nic.Listen(v.admin, v.handleAdmin); err != nil {
		nic.Close(v.vip)
		return err
	}
	v.mu.Lock()
	v.running = true
	if v.healthEvery > 0 {
		v.healthTimer = v.sched.Every(v.healthEvery, v.probeAll)
	}
	v.mu.Unlock()
	return nil
}

// Stop unbinds and halts health checking.
func (v *VirtualServer) Stop() {
	v.mu.Lock()
	v.running = false
	if v.healthTimer != nil {
		v.healthTimer.Cancel()
		v.healthTimer = nil
	}
	v.mu.Unlock()
	if nic, ok := v.net.NIC(v.nodeID); ok {
		nic.Close(v.vip)
		nic.Close(v.admin)
	}
}

// Stats returns a copy of the counters.
func (v *VirtualServer) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := Stats{Forwarded: v.stats.Forwarded, NoBackend: v.stats.NoBackend, PerServer: make(map[string]int64)}
	for k, n := range v.stats.PerServer {
		out.PerServer[k] = n
	}
	return out
}

// handleRequest schedules and forwards one inbound request.
func (v *VirtualServer) handleRequest(msg netsim.Message) {
	v.mu.Lock()
	if !v.running {
		v.mu.Unlock()
		return
	}
	s := v.pick(msg.From)
	if s == nil {
		v.stats.NoBackend++
		v.mu.Unlock()
		return
	}
	s.active++
	s.served++
	v.stats.Forwarded++
	v.stats.PerServer[s.addr.String()]++
	target := s.addr
	ttl := v.connTTL
	v.mu.Unlock()

	// Direct routing: preserve the client's source address so the backend
	// replies straight to the client.
	if nic, ok := v.net.NIC(v.nodeID); ok {
		_ = nic.Send(msg.From, target, msg.Payload, 256)
	}
	v.sched.After(ttl, func() {
		v.mu.Lock()
		if s.active > 0 {
			s.active--
		}
		v.mu.Unlock()
	})
}

// pick selects a healthy backend per the configured discipline. Callers
// hold v.mu.
func (v *VirtualServer) pick(client netsim.Addr) *realServer {
	var healthy []*realServer
	for _, s := range v.servers {
		if s.healthy {
			healthy = append(healthy, s)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	switch v.kind {
	case WeightedRoundRobin:
		// Smooth weighted round-robin (nginx algorithm).
		total := 0
		var best *realServer
		for _, s := range healthy {
			s.current += s.weight
			total += s.weight
			if best == nil || s.current > best.current {
				best = s
			}
		}
		best.current -= total
		return best
	case LeastConnections:
		best := healthy[0]
		for _, s := range healthy[1:] {
			if s.active < best.active {
				best = s
			}
		}
		return best
	case SourceHash:
		h := fnv.New32a()
		_, _ = h.Write([]byte(client.IP))
		return healthy[int(h.Sum32())%len(healthy)]
	default: // RoundRobin
		v.rrIndex++
		return healthy[v.rrIndex%len(healthy)]
	}
}

// probeAll sends a health probe to every backend and arms per-probe
// timeouts.
func (v *VirtualServer) probeAll() {
	v.mu.Lock()
	if !v.running {
		v.mu.Unlock()
		return
	}
	nic, ok := v.net.NIC(v.nodeID)
	if !ok {
		v.mu.Unlock()
		return
	}
	type probeTarget struct {
		s   *realServer
		seq int64
	}
	var targets []probeTarget
	replyTo := v.admin
	if ips := nic.OwnedIPs(); len(ips) > 0 {
		replyTo = netsim.Addr{IP: ips[0], Port: v.admin.Port}
	}
	for _, s := range v.servers {
		s.probeSeq++
		targets = append(targets, probeTarget{s: s, seq: s.probeSeq})
	}
	timeout := v.healthTimeout
	failAfter := v.failAfter
	v.mu.Unlock()

	for _, tg := range targets {
		s, seq := tg.s, tg.seq
		_ = nic.Send(replyTo, s.addr, Probe{ReplyTo: replyTo, Seq: seq}, 64)
		v.sched.After(timeout, func() {
			v.mu.Lock()
			defer v.mu.Unlock()
			// If probeSeq advanced past seq with an OK, the reply landed.
			if s.lastOKSeq >= seq {
				return
			}
			s.fails++
			s.oks = 0
			if s.healthy && s.fails >= failAfter {
				s.healthy = false
			}
		})
	}
}

// handleAdmin consumes probe replies from backends and answers liveness
// probes from a backup director.
func (v *VirtualServer) handleAdmin(msg netsim.Message) {
	if probe, isProbe := msg.Payload.(Probe); isProbe {
		v.mu.Lock()
		running := v.running
		v.mu.Unlock()
		if !running {
			return
		}
		if nic, ok := v.net.NIC(v.nodeID); ok {
			_ = nic.Send(netsim.Addr{IP: v.vip.IP, Port: v.admin.Port}, probe.ReplyTo, ProbeReply{Seq: probe.Seq}, 64)
		}
		return
	}
	reply, ok := msg.Payload.(ProbeReply)
	if !ok {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.servers {
		if s.addr.IP == msg.From.IP && s.addr.Port == msg.From.Port {
			if reply.Seq > s.lastOKSeq {
				s.lastOKSeq = reply.Seq
			}
			s.fails = 0
			s.oks++
			if !s.healthy && s.oks >= v.riseAfter {
				s.healthy = true
			}
			return
		}
	}
}
