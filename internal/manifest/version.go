// Package manifest models OSGi bundle metadata: versions, version ranges,
// and the bundle manifest headers (Bundle-SymbolicName, Import-Package,
// Export-Package, ...) that drive the module-system resolver.
package manifest

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Version is an OSGi version: major.minor.micro.qualifier. Comparison is
// numeric on the first three segments and lexicographic on the qualifier.
type Version struct {
	Major     int
	Minor     int
	Micro     int
	Qualifier string
}

// VersionZero is the default version "0.0.0".
var VersionZero = Version{}

// ParseVersion parses "1", "1.2", "1.2.3" or "1.2.3.qualifier".
func ParseVersion(s string) (Version, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return VersionZero, nil
	}
	parts := strings.SplitN(s, ".", 4)
	var v Version
	var err error
	if v.Major, err = parseSegment(parts[0]); err != nil {
		return Version{}, fmt.Errorf("manifest: invalid version %q: %w", s, err)
	}
	if len(parts) > 1 {
		if v.Minor, err = parseSegment(parts[1]); err != nil {
			return Version{}, fmt.Errorf("manifest: invalid version %q: %w", s, err)
		}
	}
	if len(parts) > 2 {
		if v.Micro, err = parseSegment(parts[2]); err != nil {
			return Version{}, fmt.Errorf("manifest: invalid version %q: %w", s, err)
		}
	}
	if len(parts) > 3 {
		q := parts[3]
		if q == "" || !isQualifier(q) {
			return Version{}, fmt.Errorf("manifest: invalid version %q: bad qualifier", s)
		}
		v.Qualifier = q
	}
	return v, nil
}

// MustParseVersion panics on parse failure; for statically known versions.
func MustParseVersion(s string) Version {
	v, err := ParseVersion(s)
	if err != nil {
		panic(err)
	}
	return v
}

func parseSegment(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("segment %q is not a number", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("segment %q is negative", s)
	}
	return n, nil
}

func isQualifier(s string) bool {
	for _, r := range s {
		switch {
		case 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z', '0' <= r && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Compare returns -1, 0 or 1 comparing v to o in OSGi order.
func (v Version) Compare(o Version) int {
	if v.Major != o.Major {
		return sign(v.Major - o.Major)
	}
	if v.Minor != o.Minor {
		return sign(v.Minor - o.Minor)
	}
	if v.Micro != o.Micro {
		return sign(v.Micro - o.Micro)
	}
	return strings.Compare(v.Qualifier, o.Qualifier)
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// String renders the shortest canonical form that round-trips.
func (v Version) String() string {
	if v.Qualifier != "" {
		return fmt.Sprintf("%d.%d.%d.%s", v.Major, v.Minor, v.Micro, v.Qualifier)
	}
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Micro)
}

// VersionRange is an OSGi version range. The zero value is the unbounded
// range "[0.0.0, ∞)".
type VersionRange struct {
	Min        Version
	Max        Version
	IncludeMin bool
	IncludeMax bool
	HasMax     bool
}

// AnyVersion is the unbounded range accepting every version.
var AnyVersion = VersionRange{IncludeMin: true}

// ParseVersionRange parses either an interval form "[1.0,2.0)" / "(1.0,2.0]"
// or a bare version "1.0", which per OSGi means "[1.0, ∞)".
func ParseVersionRange(s string) (VersionRange, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return AnyVersion, nil
	}
	first := s[0]
	if first != '[' && first != '(' {
		v, err := ParseVersion(s)
		if err != nil {
			return VersionRange{}, err
		}
		return VersionRange{Min: v, IncludeMin: true}, nil
	}
	if len(s) < 2 {
		return VersionRange{}, errors.New("manifest: truncated version range")
	}
	last := s[len(s)-1]
	if last != ']' && last != ')' {
		return VersionRange{}, fmt.Errorf("manifest: version range %q missing closing bracket", s)
	}
	body := s[1 : len(s)-1]
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return VersionRange{}, fmt.Errorf("manifest: version range %q must have two endpoints", s)
	}
	minV, err := ParseVersion(parts[0])
	if err != nil {
		return VersionRange{}, err
	}
	maxV, err := ParseVersion(parts[1])
	if err != nil {
		return VersionRange{}, err
	}
	r := VersionRange{
		Min:        minV,
		Max:        maxV,
		IncludeMin: first == '[',
		IncludeMax: last == ']',
		HasMax:     true,
	}
	if c := minV.Compare(maxV); c > 0 || (c == 0 && !(r.IncludeMin && r.IncludeMax)) {
		return VersionRange{}, fmt.Errorf("manifest: version range %q is empty", s)
	}
	return r, nil
}

// MustParseVersionRange panics on parse failure.
func MustParseVersionRange(s string) VersionRange {
	r, err := ParseVersionRange(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Includes reports whether v lies within the range.
func (r VersionRange) Includes(v Version) bool {
	cMin := v.Compare(r.Min)
	if cMin < 0 || (cMin == 0 && !r.IncludeMin) {
		return false
	}
	if !r.HasMax {
		return true
	}
	cMax := v.Compare(r.Max)
	if cMax > 0 || (cMax == 0 && !r.IncludeMax) {
		return false
	}
	return true
}

// String renders the canonical range text.
func (r VersionRange) String() string {
	if !r.HasMax {
		return r.Min.String()
	}
	open, closeB := "(", ")"
	if r.IncludeMin {
		open = "["
	}
	if r.IncludeMax {
		closeB = "]"
	}
	return open + r.Min.String() + "," + r.Max.String() + closeB
}
