package manifest

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known manifest header names.
const (
	HeaderSymbolicName  = "Bundle-SymbolicName"
	HeaderVersion       = "Bundle-Version"
	HeaderName          = "Bundle-Name"
	HeaderActivator     = "Bundle-Activator"
	HeaderImportPackage = "Import-Package"
	HeaderExportPackage = "Export-Package"
	HeaderRequireBundle = "Require-Bundle"
	HeaderDynamicImport = "DynamicImport-Package"
	HeaderStartLevel    = "Bundle-StartLevel"
	HeaderCategory      = "Bundle-Category"
)

// ImportedPackage is one clause of Import-Package.
type ImportedPackage struct {
	Name     string
	Range    VersionRange
	Optional bool
}

// ExportedPackage is one clause of Export-Package.
type ExportedPackage struct {
	Name    string
	Version Version
	// Uses lists packages whose choice constrains importers of this
	// package (the OSGi uses:="" directive, honoured by the resolver's
	// class-space consistency check).
	Uses []string
}

// RequiredBundle is one clause of Require-Bundle.
type RequiredBundle struct {
	SymbolicName string
	Range        VersionRange
	Optional     bool
}

// Manifest is a parsed bundle manifest.
type Manifest struct {
	SymbolicName   string
	Version        Version
	Name           string
	Activator      string
	StartLevel     int
	Category       string
	Imports        []ImportedPackage
	Exports        []ExportedPackage
	Requires       []RequiredBundle
	DynamicImports []string // package patterns, possibly "*" or "com.x.*"
	Headers        map[string]string
}

// Parse reads the MANIFEST.MF-style text: "Header: value" lines, with
// continuation lines starting with a single space, blank lines ignored.
func Parse(text string) (*Manifest, error) {
	headers, err := parseHeaders(text)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Headers: headers}

	rawName := headers[HeaderSymbolicName]
	if rawName == "" {
		return nil, fmt.Errorf("manifest: missing %s", HeaderSymbolicName)
	}
	// The symbolic name may carry directives (singleton:=true); keep only
	// the name itself, directives are stored in Headers for inspection.
	m.SymbolicName = strings.TrimSpace(strings.Split(rawName, ";")[0])
	if m.SymbolicName == "" {
		return nil, fmt.Errorf("manifest: empty %s", HeaderSymbolicName)
	}

	if m.Version, err = ParseVersion(headers[HeaderVersion]); err != nil {
		return nil, err
	}
	m.Name = headers[HeaderName]
	m.Activator = strings.TrimSpace(headers[HeaderActivator])
	m.Category = strings.TrimSpace(headers[HeaderCategory])
	if sl := strings.TrimSpace(headers[HeaderStartLevel]); sl != "" {
		n, err := parseSegment(sl)
		if err != nil {
			return nil, fmt.Errorf("manifest: invalid %s: %w", HeaderStartLevel, err)
		}
		m.StartLevel = n
	}

	if m.Imports, err = parseImports(headers[HeaderImportPackage]); err != nil {
		return nil, err
	}
	if m.Exports, err = parseExports(headers[HeaderExportPackage]); err != nil {
		return nil, err
	}
	if m.Requires, err = parseRequires(headers[HeaderRequireBundle]); err != nil {
		return nil, err
	}
	for _, c := range splitClauses(headers[HeaderDynamicImport]) {
		name, _, _, err := parseClause(c)
		if err != nil {
			return nil, err
		}
		m.DynamicImports = append(m.DynamicImports, name)
	}
	return m, nil
}

// MustParse panics on parse failure; for statically known manifests.
func MustParse(text string) *Manifest {
	m, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return m
}

// String reassembles a canonical manifest text.
func (m *Manifest) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", HeaderSymbolicName, m.SymbolicName)
	fmt.Fprintf(&b, "%s: %s\n", HeaderVersion, m.Version)
	if m.Name != "" {
		fmt.Fprintf(&b, "%s: %s\n", HeaderName, m.Name)
	}
	if m.Activator != "" {
		fmt.Fprintf(&b, "%s: %s\n", HeaderActivator, m.Activator)
	}
	if m.StartLevel != 0 {
		fmt.Fprintf(&b, "%s: %d\n", HeaderStartLevel, m.StartLevel)
	}
	if m.Category != "" {
		fmt.Fprintf(&b, "%s: %s\n", HeaderCategory, m.Category)
	}
	if len(m.Imports) > 0 {
		clauses := make([]string, 0, len(m.Imports))
		for _, im := range m.Imports {
			c := im.Name
			if im.Range != AnyVersion {
				c += fmt.Sprintf(";version=%q", im.Range)
			}
			if im.Optional {
				c += ";resolution:=optional"
			}
			clauses = append(clauses, c)
		}
		fmt.Fprintf(&b, "%s: %s\n", HeaderImportPackage, strings.Join(clauses, ","))
	}
	if len(m.Exports) > 0 {
		clauses := make([]string, 0, len(m.Exports))
		for _, ex := range m.Exports {
			c := ex.Name
			if ex.Version != VersionZero {
				c += fmt.Sprintf(";version=%q", ex.Version)
			}
			if len(ex.Uses) > 0 {
				c += fmt.Sprintf(";uses:=%q", strings.Join(ex.Uses, ","))
			}
			clauses = append(clauses, c)
		}
		fmt.Fprintf(&b, "%s: %s\n", HeaderExportPackage, strings.Join(clauses, ","))
	}
	if len(m.Requires) > 0 {
		clauses := make([]string, 0, len(m.Requires))
		for _, rq := range m.Requires {
			c := rq.SymbolicName
			if rq.Range != AnyVersion {
				c += fmt.Sprintf(";bundle-version=%q", rq.Range)
			}
			if rq.Optional {
				c += ";resolution:=optional"
			}
			clauses = append(clauses, c)
		}
		fmt.Fprintf(&b, "%s: %s\n", HeaderRequireBundle, strings.Join(clauses, ","))
	}
	if len(m.DynamicImports) > 0 {
		fmt.Fprintf(&b, "%s: %s\n", HeaderDynamicImport, strings.Join(m.DynamicImports, ","))
	}
	// Preserve unknown headers deterministically.
	known := map[string]bool{
		HeaderSymbolicName: true, HeaderVersion: true, HeaderName: true,
		HeaderActivator: true, HeaderImportPackage: true, HeaderExportPackage: true,
		HeaderRequireBundle: true, HeaderDynamicImport: true, HeaderStartLevel: true,
		HeaderCategory: true,
	}
	extra := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		if !known[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		fmt.Fprintf(&b, "%s: %s\n", k, m.Headers[k])
	}
	return b.String()
}

// ExportsPackage reports whether the manifest exports pkg and returns the
// clause.
func (m *Manifest) ExportsPackage(pkg string) (ExportedPackage, bool) {
	for _, e := range m.Exports {
		if e.Name == pkg {
			return e, true
		}
	}
	return ExportedPackage{}, false
}

func parseHeaders(text string) (map[string]string, error) {
	headers := make(map[string]string)
	var lastKey string
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			if lastKey == "" {
				return nil, fmt.Errorf("manifest: line %d: continuation without header", lineNo+1)
			}
			headers[lastKey] += strings.TrimSpace(line)
			continue
		}
		colon := strings.Index(line, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("manifest: line %d: missing ':' in %q", lineNo+1, line)
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		if _, dup := headers[key]; dup {
			return nil, fmt.Errorf("manifest: line %d: duplicate header %s", lineNo+1, key)
		}
		headers[key] = val
		lastKey = key
	}
	return headers, nil
}

// splitClauses splits a header value on commas that are not inside quotes.
func splitClauses(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var clauses []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			clauses = append(clauses, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		clauses = append(clauses, strings.TrimSpace(cur.String()))
	}
	return clauses
}

// parseClause splits "name;attr=val;dir:=val" into the name, attributes and
// directives.
func parseClause(clause string) (name string, attrs, dirs map[string]string, err error) {
	parts := strings.Split(clause, ";")
	name = strings.TrimSpace(parts[0])
	if name == "" {
		return "", nil, nil, fmt.Errorf("manifest: empty clause in %q", clause)
	}
	attrs = make(map[string]string)
	dirs = make(map[string]string)
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		eq := strings.Index(p, "=")
		if eq <= 0 {
			return "", nil, nil, fmt.Errorf("manifest: malformed parameter %q in clause %q", p, clause)
		}
		key := strings.TrimSpace(p[:eq])
		val := strings.TrimSpace(p[eq+1:])
		val = strings.Trim(val, `"`)
		if strings.HasSuffix(key, ":") { // directive, "key:=value"
			dirs[strings.TrimSuffix(key, ":")] = val
		} else {
			attrs[key] = val
		}
	}
	return name, attrs, dirs, nil
}

func parseImports(header string) ([]ImportedPackage, error) {
	var out []ImportedPackage
	seen := make(map[string]bool)
	for _, c := range splitClauses(header) {
		name, attrs, dirs, err := parseClause(c)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("manifest: duplicate import of package %s", name)
		}
		seen[name] = true
		r, err := ParseVersionRange(attrs["version"])
		if err != nil {
			return nil, err
		}
		out = append(out, ImportedPackage{
			Name:     name,
			Range:    r,
			Optional: dirs["resolution"] == "optional",
		})
	}
	return out, nil
}

func parseExports(header string) ([]ExportedPackage, error) {
	var out []ExportedPackage
	for _, c := range splitClauses(header) {
		name, attrs, dirs, err := parseClause(c)
		if err != nil {
			return nil, err
		}
		v, err := ParseVersion(attrs["version"])
		if err != nil {
			return nil, err
		}
		var uses []string
		if u := dirs["uses"]; u != "" {
			for _, pkg := range strings.Split(u, ",") {
				if pkg = strings.TrimSpace(pkg); pkg != "" {
					uses = append(uses, pkg)
				}
			}
		}
		out = append(out, ExportedPackage{Name: name, Version: v, Uses: uses})
	}
	return out, nil
}

func parseRequires(header string) ([]RequiredBundle, error) {
	var out []RequiredBundle
	for _, c := range splitClauses(header) {
		name, attrs, dirs, err := parseClause(c)
		if err != nil {
			return nil, err
		}
		r, err := ParseVersionRange(attrs["bundle-version"])
		if err != nil {
			return nil, err
		}
		out = append(out, RequiredBundle{
			SymbolicName: name,
			Range:        r,
			Optional:     dirs["resolution"] == "optional",
		})
	}
	return out, nil
}

// PackageOf returns the package part of a dotted class name
// ("com.example.foo.Widget" -> "com.example.foo"). Names without a dot have
// the empty (default) package.
func PackageOf(className string) string {
	idx := strings.LastIndex(className, ".")
	if idx < 0 {
		return ""
	}
	return className[:idx]
}

// MatchesPattern reports whether pkg matches a DynamicImport-Package style
// pattern: exact name, "*" (everything), or "prefix.*".
func MatchesPattern(pattern, pkg string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, ".*") {
		prefix := strings.TrimSuffix(pattern, ".*")
		return pkg == prefix || strings.HasPrefix(pkg, prefix+".")
	}
	return pattern == pkg
}
