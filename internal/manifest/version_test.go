package manifest

import (
	"testing"
	"testing/quick"
)

func TestParseVersion(t *testing.T) {
	tests := []struct {
		in   string
		want Version
		err  bool
	}{
		{"", Version{}, false},
		{"1", Version{Major: 1}, false},
		{"1.2", Version{Major: 1, Minor: 2}, false},
		{"1.2.3", Version{Major: 1, Minor: 2, Micro: 3}, false},
		{"1.2.3.beta-1", Version{1, 2, 3, "beta-1"}, false},
		{" 2.0.1 ", Version{Major: 2, Micro: 1}, false},
		{"a", Version{}, true},
		{"1.x", Version{}, true},
		{"-1.0", Version{}, true},
		{"1.2.3.", Version{}, true},
		{"1.2.3.q!", Version{}, true},
	}
	for _, tt := range tests {
		got, err := ParseVersion(tt.in)
		if (err != nil) != tt.err {
			t.Errorf("ParseVersion(%q) error = %v, wantErr %v", tt.in, err, tt.err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseVersion(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	ordered := []string{"0.0.0", "0.0.1", "0.1.0", "0.9.9", "1.0.0", "1.0.0.alpha", "1.0.0.beta", "1.0.1", "2.0.0"}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			a, b := MustParseVersion(ordered[i]), MustParseVersion(ordered[j])
			got := a.Compare(b)
			want := sign(i - j)
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestVersionString(t *testing.T) {
	for _, s := range []string{"0.0.0", "1.2.3", "1.2.3.rc1"} {
		if got := MustParseVersion(s).String(); got != s {
			t.Errorf("String round trip: %q -> %q", s, got)
		}
	}
	if got := MustParseVersion("1.2").String(); got != "1.2.0" {
		t.Errorf("short form canonicalization: got %q, want 1.2.0", got)
	}
}

func TestParseVersionRange(t *testing.T) {
	tests := []struct {
		in       string
		includes []string
		excludes []string
		err      bool
	}{
		{"", []string{"0.0.0", "99.0.0"}, nil, false},
		{"1.0", []string{"1.0.0", "2.5.0"}, []string{"0.9.9"}, false},
		{"[1.0,2.0)", []string{"1.0.0", "1.9.9"}, []string{"0.9.9", "2.0.0"}, false},
		{"[1.0,2.0]", []string{"1.0.0", "2.0.0"}, []string{"2.0.1"}, false},
		{"(1.0,2.0)", []string{"1.0.1"}, []string{"1.0.0", "2.0.0"}, false},
		{"(1.0,2.0]", []string{"2.0.0"}, []string{"1.0.0"}, false},
		{"[1.0.0,1.0.0]", []string{"1.0.0"}, []string{"1.0.1", "0.9.9"}, false},
		{"[2.0,1.0]", nil, nil, true},
		{"(1.0,1.0)", nil, nil, true},
		{"[1.0,1.0)", nil, nil, true},
		{"[1.0", nil, nil, true},
		{"[1.0,2.0,3.0]", nil, nil, true},
		{"[x,2.0]", nil, nil, true},
	}
	for _, tt := range tests {
		r, err := ParseVersionRange(tt.in)
		if (err != nil) != tt.err {
			t.Errorf("ParseVersionRange(%q) error = %v, wantErr %v", tt.in, err, tt.err)
			continue
		}
		if err != nil {
			continue
		}
		for _, v := range tt.includes {
			if !r.Includes(MustParseVersion(v)) {
				t.Errorf("range %q should include %s", tt.in, v)
			}
		}
		for _, v := range tt.excludes {
			if r.Includes(MustParseVersion(v)) {
				t.Errorf("range %q should exclude %s", tt.in, v)
			}
		}
	}
}

func TestVersionRangeString(t *testing.T) {
	for _, s := range []string{"[1.0.0,2.0.0)", "(1.0.0,2.0.0]", "[1.0.0,1.0.0]", "1.0.0"} {
		r := MustParseVersionRange(s)
		if got := r.String(); got != s {
			t.Errorf("range String round trip: %q -> %q", s, got)
		}
	}
}

// Property: range parse/print round-trips and Includes is consistent with
// endpoint comparison.
func TestVersionRangeProperty(t *testing.T) {
	prop := func(aMaj, aMin, bMaj, bMin uint8, incMin, incMax bool) bool {
		lo := Version{Major: int(aMaj), Minor: int(aMin)}
		hi := Version{Major: int(bMaj), Minor: int(bMin)}
		if lo.Compare(hi) > 0 {
			lo, hi = hi, lo
		}
		if lo.Compare(hi) == 0 {
			incMin, incMax = true, true
		}
		r := VersionRange{Min: lo, Max: hi, IncludeMin: incMin, IncludeMax: incMax, HasMax: true}
		r2, err := ParseVersionRange(r.String())
		if err != nil {
			return false
		}
		if r2 != r {
			return false
		}
		// Endpoint membership must agree with inclusivity flags.
		if r.Includes(lo) != incMin {
			return false
		}
		if r.Includes(hi) != incMax && lo.Compare(hi) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and transitive-ish over random triples.
func TestVersionCompareProperty(t *testing.T) {
	gen := func(a, b, c uint8) Version {
		return Version{Major: int(a % 4), Minor: int(b % 4), Micro: int(c % 4)}
	}
	prop := func(a1, a2, a3, b1, b2, b3 uint8) bool {
		va, vb := gen(a1, a2, a3), gen(b1, b2, b3)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		if va.Compare(va) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
