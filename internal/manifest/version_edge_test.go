package manifest

import "testing"

// Edge cases the provisioning deployer leans on when matching artifact
// versions against Require-Bundle ranges.

// TestVersionQualifierOrdering pins OSGi qualifier semantics: the
// unqualified version sorts before any qualified one, qualifiers compare
// lexicographically (case-sensitive, so digits < uppercase < lowercase),
// and multi-digit qualifiers compare as text, not numbers.
func TestVersionQualifierOrdering(t *testing.T) {
	ordered := []string{
		"1.0.0",       // no qualifier is the smallest
		"1.0.0.ALPHA", // uppercase before lowercase in ASCII
		"1.0.0.RC1",
		"1.0.0.alpha",   // a prefix sorts before its extensions
		"1.0.0.alpha-2", // '-' (0x2d) before '_' (0x5f)
		"1.0.0.alpha_2",
		"1.0.0.beta",
		"1.0.0.rc10", // lexicographic: "rc10" < "rc2"
		"1.0.0.rc2",
		"1.0.1", // micro bump beats any qualifier
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			a, b := MustParseVersion(ordered[i]), MustParseVersion(ordered[j])
			if got, want := a.Compare(b), sign(i-j); got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

// TestVersionRangeQualifierBoundaries checks qualified versions against
// half-open range endpoints: [1.0,2.0) admits 1.x qualifiers but rejects
// 2.0.0 and everything above it, including 2.0.0 with a qualifier.
func TestVersionRangeQualifierBoundaries(t *testing.T) {
	r := MustParseVersionRange("[1.0,2.0)")
	for _, v := range []string{"1.0.0", "1.0.0.alpha", "1.9.9.zz"} {
		if !r.Includes(MustParseVersion(v)) {
			t.Errorf("range [1.0,2.0) should include %s", v)
		}
	}
	for _, v := range []string{"2.0.0", "2.0.0.alpha", "0.9.9.zz"} {
		if r.Includes(MustParseVersion(v)) {
			t.Errorf("range [1.0,2.0) should exclude %s", v)
		}
	}
	// An exclusive minimum rejects the endpoint but not its qualified
	// successors (1.0.0.q > 1.0.0).
	r = MustParseVersionRange("(1.0,2.0)")
	if r.Includes(MustParseVersion("1.0.0")) {
		t.Error("range (1.0,2.0) should exclude its minimum")
	}
	if !r.Includes(MustParseVersion("1.0.0.alpha")) {
		t.Error("range (1.0,2.0) should include 1.0.0.alpha")
	}
}

// TestVersionRangeOpenEnded checks the bare-version form "v" meaning
// [v, ∞): no upper bound, inclusive lower bound, round-tripping String.
func TestVersionRangeOpenEnded(t *testing.T) {
	r := MustParseVersionRange("1.5")
	if r.HasMax {
		t.Fatal("bare version parsed with an upper bound")
	}
	for _, v := range []string{"1.5.0", "1.5.0.q", "99.0.0", "2147483647.0.0"} {
		if !r.Includes(MustParseVersion(v)) {
			t.Errorf("open-ended 1.5 should include %s", v)
		}
	}
	for _, v := range []string{"1.4.9", "0.0.0"} {
		if r.Includes(MustParseVersion(v)) {
			t.Errorf("open-ended 1.5 should exclude %s", v)
		}
	}
	if got := r.String(); got != "1.5.0" {
		t.Errorf("open-ended String = %q, want canonical bare version", got)
	}
	// The empty range expression is the unbounded AnyVersion.
	any, err := ParseVersionRange("")
	if err != nil || any != AnyVersion {
		t.Fatalf("ParseVersionRange(\"\") = %v, %v", any, err)
	}
	if !any.Includes(VersionZero) || !any.Includes(MustParseVersion("999.999.999.zz")) {
		t.Error("AnyVersion must include everything")
	}
}

// TestVersionRangeMalformed rejects the strings a hand-written manifest
// (or a corrupted artifact) could smuggle in.
func TestVersionRangeMalformed(t *testing.T) {
	for _, in := range []string{
		"[",           // truncated
		"]",           // closing bracket only
		"[]",          // no endpoints
		"[1.0",        // missing closing bracket
		"1.0,2.0]",    // missing opening bracket
		"[1.0;2.0]",   // wrong separator
		"[1.0,2.0,3]", // too many endpoints
		"[1.0,two]",   // non-numeric endpoint
		"[1.0.0.!,2]", // invalid qualifier character
		"[-1.0,2.0]",  // negative segment
		"(2.0,1.0)",   // inverted
		"(1.0,1.0]",   // empty: exclusive min meets inclusive max
		"[2.0,2.0)",   // empty: inclusive min meets exclusive max
	} {
		if _, err := ParseVersionRange(in); err == nil {
			t.Errorf("ParseVersionRange(%q) accepted a malformed range", in)
		}
	}
	// Whitespace around a well-formed range is tolerated.
	if _, err := ParseVersionRange("  [1.0,2.0)  "); err != nil {
		t.Errorf("surrounding whitespace rejected: %v", err)
	}
}
