package manifest

import (
	"strings"
	"testing"
)

const sampleManifest = `Bundle-SymbolicName: com.example.shop
Bundle-Version: 1.4.0
Bundle-Name: Shop Service
Bundle-Activator: com.example.shop.Activator
Bundle-StartLevel: 3
Import-Package: com.example.log;version="[1.0,2.0)",
 com.example.db;version="1.1";resolution:=optional,
 com.example.util
Export-Package: com.example.shop;version="1.4";uses:="com.example.util",
 com.example.shop.spi;version="1.4"
Require-Bundle: com.example.base;bundle-version="[2.0,3.0)"
DynamicImport-Package: com.example.ext.*
X-Custom: hello
`

func TestParseManifest(t *testing.T) {
	m, err := Parse(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.SymbolicName != "com.example.shop" {
		t.Errorf("SymbolicName = %q", m.SymbolicName)
	}
	if m.Version != (Version{Major: 1, Minor: 4}) {
		t.Errorf("Version = %v", m.Version)
	}
	if m.Name != "Shop Service" {
		t.Errorf("Name = %q", m.Name)
	}
	if m.Activator != "com.example.shop.Activator" {
		t.Errorf("Activator = %q", m.Activator)
	}
	if m.StartLevel != 3 {
		t.Errorf("StartLevel = %d", m.StartLevel)
	}
	if len(m.Imports) != 3 {
		t.Fatalf("Imports = %d, want 3", len(m.Imports))
	}
	if m.Imports[0].Name != "com.example.log" || m.Imports[0].Range.String() != "[1.0.0,2.0.0)" {
		t.Errorf("import 0 = %+v", m.Imports[0])
	}
	if !m.Imports[1].Optional {
		t.Error("import 1 should be optional")
	}
	if m.Imports[2].Range != AnyVersion {
		t.Errorf("import 2 range = %v, want any", m.Imports[2].Range)
	}
	if len(m.Exports) != 2 {
		t.Fatalf("Exports = %d, want 2", len(m.Exports))
	}
	if m.Exports[0].Version != (Version{Major: 1, Minor: 4}) {
		t.Errorf("export version = %v", m.Exports[0].Version)
	}
	if len(m.Exports[0].Uses) != 1 || m.Exports[0].Uses[0] != "com.example.util" {
		t.Errorf("export uses = %v", m.Exports[0].Uses)
	}
	if len(m.Requires) != 1 || m.Requires[0].SymbolicName != "com.example.base" {
		t.Errorf("Requires = %+v", m.Requires)
	}
	if len(m.DynamicImports) != 1 || m.DynamicImports[0] != "com.example.ext.*" {
		t.Errorf("DynamicImports = %v", m.DynamicImports)
	}
	if m.Headers["X-Custom"] != "hello" {
		t.Errorf("custom header = %q", m.Headers["X-Custom"])
	}
}

func TestParseManifestErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{"missing symbolic name", "Bundle-Version: 1.0\n"},
		{"bad version", "Bundle-SymbolicName: a\nBundle-Version: x\n"},
		{"bad import range", "Bundle-SymbolicName: a\nImport-Package: p;version=\"[x,1)\"\n"},
		{"duplicate import", "Bundle-SymbolicName: a\nImport-Package: p,p\n"},
		{"no colon", "Bundle-SymbolicName a\n"},
		{"duplicate header", "Bundle-SymbolicName: a\nBundle-SymbolicName: b\n"},
		{"orphan continuation", " continuation\nBundle-SymbolicName: a\n"},
		{"bad start level", "Bundle-SymbolicName: a\nBundle-StartLevel: x\n"},
		{"malformed param", "Bundle-SymbolicName: a\nImport-Package: p;version\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.text); err == nil {
				t.Errorf("Parse succeeded, want error")
			}
		})
	}
}

func TestManifestStringRoundTrip(t *testing.T) {
	m := MustParse(sampleManifest)
	m2, err := Parse(m.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, m.String())
	}
	if m2.SymbolicName != m.SymbolicName || m2.Version != m.Version {
		t.Error("identity lost in round trip")
	}
	if len(m2.Imports) != len(m.Imports) || len(m2.Exports) != len(m.Exports) {
		t.Error("clauses lost in round trip")
	}
	for i := range m.Imports {
		if m2.Imports[i] != m.Imports[i] {
			t.Errorf("import %d: %+v != %+v", i, m2.Imports[i], m.Imports[i])
		}
	}
	if m2.Headers["X-Custom"] != "hello" {
		t.Error("extra header lost in round trip")
	}
}

func TestContinuationLines(t *testing.T) {
	text := "Bundle-SymbolicName: com.exa\n mple.long\nBundle-Version: 1.0\n"
	m, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if m.SymbolicName != "com.example.long" {
		t.Errorf("SymbolicName = %q, want continuation merged", m.SymbolicName)
	}
}

func TestSymbolicNameDirectivesStripped(t *testing.T) {
	m := MustParse("Bundle-SymbolicName: com.example.single;singleton:=true\n")
	if m.SymbolicName != "com.example.single" {
		t.Errorf("SymbolicName = %q", m.SymbolicName)
	}
}

func TestPackageOf(t *testing.T) {
	tests := []struct{ class, pkg string }{
		{"com.example.foo.Widget", "com.example.foo"},
		{"Widget", ""},
		{"a.B", "a"},
	}
	for _, tt := range tests {
		if got := PackageOf(tt.class); got != tt.pkg {
			t.Errorf("PackageOf(%q) = %q, want %q", tt.class, got, tt.pkg)
		}
	}
}

func TestMatchesPattern(t *testing.T) {
	tests := []struct {
		pattern, pkg string
		want         bool
	}{
		{"*", "anything.at.all", true},
		{"com.x.*", "com.x", true},
		{"com.x.*", "com.x.y", true},
		{"com.x.*", "com.xy", false},
		{"com.x", "com.x", true},
		{"com.x", "com.x.y", false},
	}
	for _, tt := range tests {
		if got := MatchesPattern(tt.pattern, tt.pkg); got != tt.want {
			t.Errorf("MatchesPattern(%q, %q) = %v, want %v", tt.pattern, tt.pkg, got, tt.want)
		}
	}
}

func TestExportsPackage(t *testing.T) {
	m := MustParse(sampleManifest)
	if _, ok := m.ExportsPackage("com.example.shop"); !ok {
		t.Error("ExportsPackage missed an exported package")
	}
	if _, ok := m.ExportsPackage("com.example.private"); ok {
		t.Error("ExportsPackage found a non-exported package")
	}
}

func TestSplitClausesQuoted(t *testing.T) {
	clauses := splitClauses(`a;version="[1.0,2.0)",b`)
	if len(clauses) != 2 || !strings.HasPrefix(clauses[0], "a;") || clauses[1] != "b" {
		t.Errorf("splitClauses = %q", clauses)
	}
}
