package services

import (
	"errors"
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/ipvs"
	"dosgi/internal/module"
	"dosgi/internal/netsim"
	"dosgi/internal/vjvm"
)

// HTTPRequest is the simulated HTTP request carried over netsim. CPUCost
// models the handler's service demand; it is consumed from the owning
// instance's resource domain, so a busy tenant's requests queue behind its
// fair share — the behaviour SLA enforcement acts on.
type HTTPRequest struct {
	ID      int64
	Path    string
	CPUCost time.Duration
	Bytes   int
}

// HTTPResponse answers an HTTPRequest.
type HTTPResponse struct {
	ID     int64
	Path   string
	Status int
	Bytes  int
}

// HTTP status codes used by the simulated service.
const (
	StatusOK          = 200
	StatusNotFound    = 404
	StatusUnavailable = 503
)

// Servlet handles a request after its CPU cost has been consumed and
// returns the response status.
type Servlet func(req HTTPRequest) int

// ErrNotRunning is returned when registering servlets on a stopped service.
var ErrNotRunning = errors.New("services: http service not running")

// HTTPStats counts request outcomes.
type HTTPStats struct {
	Served      int64
	NotFound    int64
	Unavailable int64
}

// HTTPService is a per-instance HTTP endpoint: requests arrive on the
// instance's address, consume CPU in the instance's resource domain and
// reply to the caller. It answers ipvs health probes, so instances can sit
// behind a virtual server (Figure 6).
type HTTPService struct {
	sched    clock.Scheduler
	nic      *netsim.NIC
	addr     netsim.Addr
	vm       *vjvm.VJVM
	domainID string

	mu       sync.Mutex
	running  bool
	servlets map[string]Servlet
	stats    HTTPStats
	// onServed observes (request, status, latency) for measurement.
	onServed func(req HTTPRequest, status int, latency time.Duration)
	arrivals map[int64]time.Duration
}

// NewHTTPService builds the service bound to addr, accounting CPU to
// domainID of vm.
func NewHTTPService(sched clock.Scheduler, nic *netsim.NIC, addr netsim.Addr, vm *vjvm.VJVM, domainID string) *HTTPService {
	return &HTTPService{
		sched:    sched,
		nic:      nic,
		addr:     addr,
		vm:       vm,
		domainID: domainID,
		servlets: make(map[string]Servlet),
		arrivals: make(map[int64]time.Duration),
	}
}

// Addr returns the bound address.
func (s *HTTPService) Addr() netsim.Addr { return s.addr }

// OnServed installs a measurement hook.
func (s *HTTPService) OnServed(fn func(req HTTPRequest, status int, latency time.Duration)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onServed = fn
}

// RegisterServlet maps path to a servlet. A nil servlet answers 200.
func (s *HTTPService) RegisterServlet(path string, servlet Servlet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if servlet == nil {
		servlet = func(HTTPRequest) int { return StatusOK }
	}
	s.servlets[path] = servlet
}

// UnregisterServlet removes a path.
func (s *HTTPService) UnregisterServlet(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servlets, path)
}

// Start binds the endpoint.
func (s *HTTPService) Start() error {
	if err := s.nic.Listen(s.addr, s.handle); err != nil {
		return err
	}
	s.mu.Lock()
	s.running = true
	s.mu.Unlock()
	return nil
}

// Stop unbinds the endpoint; in-flight requests complete (their domain
// tasks keep running) but replies from a closed port still flow — the
// connection-level teardown is out of model.
func (s *HTTPService) Stop() {
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
	s.nic.Close(s.addr)
}

// Stats returns a copy of the counters.
func (s *HTTPService) Stats() HTTPStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *HTTPService) handle(msg netsim.Message) {
	// Health probes (from an ipvs director) answer immediately.
	if probe, isProbe := msg.Payload.(ipvs.Probe); isProbe {
		_ = s.nic.Send(s.addr, probe.ReplyTo, ipvs.ProbeReply{Seq: probe.Seq}, 64)
		return
	}
	req, ok := msg.Payload.(HTTPRequest)
	if !ok {
		return
	}
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	servlet, found := s.servlets[req.Path]
	s.arrivals[req.ID] = s.sched.Now()
	s.mu.Unlock()

	if !found {
		s.reply(msg.From, req, StatusNotFound)
		return
	}
	if _, err := s.vm.Submit(s.domainID, req.CPUCost, func(completed bool) {
		if !completed {
			s.reply(msg.From, req, StatusUnavailable)
			return
		}
		status := servlet(req)
		s.reply(msg.From, req, status)
	}); err != nil {
		s.reply(msg.From, req, StatusUnavailable)
	}
}

func (s *HTTPService) reply(to netsim.Addr, req HTTPRequest, status int) {
	s.mu.Lock()
	switch status {
	case StatusOK:
		s.stats.Served++
	case StatusNotFound:
		s.stats.NotFound++
	default:
		s.stats.Unavailable++
	}
	arrival, seen := s.arrivals[req.ID]
	delete(s.arrivals, req.ID)
	hook := s.onServed
	s.mu.Unlock()
	if hook != nil {
		latency := time.Duration(0)
		if seen {
			latency = s.sched.Now() - arrival
		}
		hook(req, status, latency)
	}
	_ = s.nic.Send(s.addr, to, HTTPResponse{ID: req.ID, Path: req.Path, Status: status, Bytes: req.Bytes}, 64+req.Bytes)
}

// HTTPBundleDefinition packages an HTTPService as an installable bundle:
// starting the bundle binds the endpoint, stopping unbinds it.
func HTTPBundleDefinition(symbolicName string, svc *HTTPService) *module.Definition {
	return &module.Definition{
		ManifestText: "Bundle-SymbolicName: " + symbolicName + "\n" +
			"Bundle-Version: 1.0.0\nBundle-Activator: " + symbolicName + ".Activator\n" +
			"Export-Package: org.osgi.service.http\n",
		Classes: map[string]any{
			"org.osgi.service.http.HttpService": "interface:HttpService",
		},
		NewActivator: func() module.Activator {
			var reg *module.ServiceRegistration
			return &module.ActivatorFuncs{
				OnStart: func(ctx *module.Context) error {
					if err := svc.Start(); err != nil {
						return err
					}
					var err error
					reg, err = ctx.RegisterSingle(HTTPServiceClass, svc, module.Properties{
						"endpoint": svc.Addr().String(),
					})
					return err
				},
				OnStop: func(ctx *module.Context) error {
					if reg != nil {
						_ = reg.Unregister()
					}
					svc.Stop()
					return nil
				},
			}
		},
	}
}
