// Package services provides the base platform services the paper runs in
// the underlying framework and shares into virtual instances (§2, §4: "we
// already tested it by running multiple virtual instances that use services
// from the underlying environment namely the log service, the HTTP service
// and the JMX server service"): a log service, an HTTP service whose
// request handling consumes accounted CPU from the owning instance's
// resource domain, and a JMX-like metrics service.
package services

import (
	"fmt"
	"sync"
	"time"

	"dosgi/internal/clock"
	"dosgi/internal/module"
)

// Service class names under which the base services register.
const (
	LogServiceClass     = "org.osgi.service.log.LogService"
	HTTPServiceClass    = "org.osgi.service.http.HttpService"
	MetricsServiceClass = "javax.management.MBeanServer"
)

// LogLevel grades log entries.
type LogLevel int

// Log levels, mirroring the OSGi Log Service.
const (
	LogError LogLevel = iota + 1
	LogWarning
	LogInfo
	LogDebug
)

func (l LogLevel) String() string {
	switch l {
	case LogError:
		return "ERROR"
	case LogWarning:
		return "WARNING"
	case LogInfo:
		return "INFO"
	case LogDebug:
		return "DEBUG"
	}
	return "UNKNOWN"
}

// LogEntry is one recorded message.
type LogEntry struct {
	Time    time.Duration
	Level   LogLevel
	Source  string
	Message string
}

// String implements fmt.Stringer.
func (e LogEntry) String() string {
	return fmt.Sprintf("[%v] %s %s: %s", e.Time, e.Level, e.Source, e.Message)
}

// LogService is the shared log of the underlying framework — the paper's
// canonical example of a service "well suited" for pulling down and sharing
// across virtual instances.
type LogService struct {
	sched clock.Scheduler

	mu        sync.Mutex
	entries   []LogEntry
	capacity  int
	listeners []func(LogEntry)
}

// NewLogService builds a log keeping at most capacity entries (default
// 1024).
func NewLogService(sched clock.Scheduler, capacity int) *LogService {
	if capacity <= 0 {
		capacity = 1024
	}
	return &LogService{sched: sched, capacity: capacity}
}

// Log records an entry.
func (s *LogService) Log(level LogLevel, source, format string, args ...any) {
	entry := LogEntry{
		Time:    s.sched.Now(),
		Level:   level,
		Source:  source,
		Message: fmt.Sprintf(format, args...),
	}
	s.mu.Lock()
	s.entries = append(s.entries, entry)
	if len(s.entries) > s.capacity {
		s.entries = s.entries[len(s.entries)-s.capacity:]
	}
	listeners := append(make([]func(LogEntry), 0, len(s.listeners)), s.listeners...)
	s.mu.Unlock()
	for _, fn := range listeners {
		fn(entry)
	}
}

// Entries returns a copy of the retained log.
func (s *LogService) Entries() []LogEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LogEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// AddListener subscribes to new entries.
func (s *LogService) AddListener(fn func(LogEntry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, fn)
}

// Count returns the number of retained entries.
func (s *LogService) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// LogBundleDefinition packages the log service as an installable bundle
// for the underlying framework.
func LogBundleDefinition(sched clock.Scheduler) *module.Definition {
	return &module.Definition{
		ManifestText: `Bundle-SymbolicName: org.osgi.service.log
Bundle-Version: 1.3.0
Bundle-Activator: org.osgi.service.log.Activator
Export-Package: org.osgi.service.log;version="1.3"
`,
		Classes: map[string]any{
			"org.osgi.service.log.LogService": "interface:LogService",
		},
		NewActivator: func() module.Activator {
			var reg *module.ServiceRegistration
			return &module.ActivatorFuncs{
				OnStart: func(ctx *module.Context) error {
					svc := NewLogService(sched, 0)
					var err error
					reg, err = ctx.RegisterSingle(LogServiceClass, svc, module.Properties{"shared": true})
					return err
				},
				OnStop: func(ctx *module.Context) error {
					if reg != nil {
						_ = reg.Unregister()
					}
					return nil
				},
			}
		},
	}
}
