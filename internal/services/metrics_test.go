package services

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dosgi/internal/obs"
)

// TestMetricsReadRecoversPanickingProvider: one buggy MBean must not
// take down the reader — the panic is contained to that provider's own
// map as an "error" attribute, and every other provider still reads.
func TestMetricsReadRecoversPanickingProvider(t *testing.T) {
	m := NewMetricsService()
	m.RegisterProvider("good", func() map[string]any {
		return map[string]any{"x": 1}
	})
	m.RegisterProvider("buggy", func() map[string]any {
		panic("nil map write")
	})

	attrs, ok := m.Read("buggy")
	if !ok {
		t.Fatal("panicking provider reported as missing")
	}
	errText, _ := attrs["error"].(string)
	if !strings.Contains(errText, "provider panic") || !strings.Contains(errText, "nil map write") {
		t.Fatalf("panic not surfaced as error attribute: %v", attrs)
	}

	// The sweep survives too: Snapshot reads both providers, the buggy
	// one degraded to its error attribute.
	snap := m.Snapshot()
	if snap["good"]["x"] != 1 {
		t.Fatalf("good provider lost in snapshot: %v", snap)
	}
	if _, hasErr := snap["buggy"]["error"]; !hasErr {
		t.Fatalf("buggy provider not contained in snapshot: %v", snap)
	}
}

// TestMetricsServiceConcurrentAccess hammers Register/Unregister/Read/
// Snapshot from many goroutines — the admin plane polls while modules
// come and go. Run under -race this is the locking proof.
func TestMetricsServiceConcurrentAccess(t *testing.T) {
	m := NewMetricsService()
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("p%d", w)
			for i := 0; i < rounds; i++ {
				m.RegisterProvider(name, func() map[string]any {
					return map[string]any{"i": i}
				})
				m.Read(name)
				if i%10 == 0 {
					m.Snapshot()
					m.Names()
				}
				m.UnregisterProvider(name)
			}
		}()
	}
	wg.Wait()
	if n := len(m.Names()); n != 0 {
		t.Fatalf("%d providers left after churn", n)
	}
}

// TestMetricsRemoteLines: the wire-facing read service flattens
// providers to sorted "key=value" lines and provider-prefixed snapshot
// lines — the exact strings dosgictl metrics prints.
func TestMetricsRemoteLines(t *testing.T) {
	m := NewMetricsService()
	m.RegisterProvider("node", func() map[string]any {
		return map[string]any{"cpu": int64(42), "name": "n1"}
	})
	r := NewMetricsRemote(m, nil)

	if got := r.Providers(); len(got) != 1 || got[0] != "node" {
		t.Fatalf("Providers = %v", got)
	}
	if got := r.Read("node"); len(got) != 2 || got[0] != "cpu=42" || got[1] != "name=n1" {
		t.Fatalf("Read = %v", got)
	}
	if got := r.Read("missing"); len(got) != 0 {
		t.Fatalf("Read missing = %v", got)
	}
	if got := r.Snapshot(); len(got) != 2 || got[0] != "node cpu=42" || got[1] != "node name=n1" {
		t.Fatalf("Snapshot = %v", got)
	}
	// No span store: the trace surface degrades to empty, not a panic.
	if got := r.Trace(1); len(got) != 0 {
		t.Fatalf("Trace without store = %v", got)
	}
	if got := r.Recent(5); len(got) != 0 {
		t.Fatalf("Recent without store = %v", got)
	}
}

// TestMetricsRemoteTraceAndRecent: spans round-trip the wire tuple form
// and Recent lists root client spans newest first.
func TestMetricsRemoteTraceAndRecent(t *testing.T) {
	store := obs.NewSpanStore(16)
	mkRoot := func(tid uint64, start time.Duration) obs.Span {
		return obs.Span{
			TraceID: tid, SpanID: tid + 1, Kind: obs.SpanClient,
			Node: "n1", Service: "svc", Method: "M",
			Start: start, End: start + time.Millisecond,
		}
	}
	store.Add(mkRoot(0x10, 1*time.Millisecond))
	store.Add(obs.Span{ // an attempt span: must not show up in Recent
		TraceID: 0x10, SpanID: 0x12, Parent: 0x11, Kind: obs.SpanClient,
		Node: "n1", Service: "svc", Method: "M",
		Start: 1 * time.Millisecond, End: 2 * time.Millisecond,
	})
	store.Add(mkRoot(0x20, 5*time.Millisecond))

	r := NewMetricsRemote(NewMetricsService(), store)

	tuples := r.Trace(0x10)
	if len(tuples) != 2 {
		t.Fatalf("Trace = %v", tuples)
	}
	sp, ok := obs.SpanFromTuple(tuples[0].([]any))
	if !ok || sp.TraceID != 0x10 || sp.SpanID != 0x11 || sp.Node != "n1" {
		t.Fatalf("tuple round trip = %+v ok=%v", sp, ok)
	}

	recent := r.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("Recent = %v", recent)
	}
	if first, _ := recent[0].(string); !strings.HasPrefix(first, "0000000000000020 svc.M") {
		t.Fatalf("Recent not newest-first: %v", recent)
	}
	if limited := r.Recent(1); len(limited) != 1 {
		t.Fatalf("Recent(1) = %v", limited)
	}
}
