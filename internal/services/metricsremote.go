package services

import (
	"fmt"
	"sort"

	"dosgi/internal/obs"
)

// MetricsRemoteName is the reserved exported-service name every daemon
// publishes its metrics read service under — the wire half of the
// one-stop metrics pull: `dosgictl metrics` / `dosgictl trace` ask one
// daemon, which reads its own providers and fans out to its peers
// through this service.
const MetricsRemoteName = "dosgi.metrics"

// MetricsRemote serves a process's MetricsService and span store over
// the remote invocation protocol. Every method returns only
// wire-encodable values ([]any of strings or int64 tuples), so peers —
// and dosgictl through a daemon — read metrics and assemble cross-node
// traces without shared types or a second protocol.
type MetricsRemote struct {
	metrics *MetricsService
	store   *obs.SpanStore
}

// NewMetricsRemote wraps metrics and the local span store (nil allowed:
// a process without a tracer still serves its providers).
func NewMetricsRemote(metrics *MetricsService, store *obs.SpanStore) *MetricsRemote {
	return &MetricsRemote{metrics: metrics, store: store}
}

// Providers lists the registered provider names, sorted.
func (m *MetricsRemote) Providers() []any {
	names := m.metrics.Names()
	out := make([]any, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// Read returns one provider's attributes as sorted "key=value" lines;
// empty for an unknown provider.
func (m *MetricsRemote) Read(name string) []any {
	attrs, ok := m.metrics.Read(name)
	if !ok {
		return nil
	}
	return attrLines("", attrs)
}

// Snapshot returns every provider's attributes as sorted
// "provider key=value" lines.
func (m *MetricsRemote) Snapshot() []any {
	var out []any
	for _, name := range m.metrics.Names() {
		if attrs, ok := m.metrics.Read(name); ok {
			out = append(out, attrLines(name+" ", attrs)...)
		}
	}
	return out
}

// Trace returns the locally retained spans of one trace — the id is the
// uint64 bit pattern as int64 — flattened to wire tuples
// (obs.Span.Tuple).
func (m *MetricsRemote) Trace(id int64) []any {
	if m.store == nil {
		return nil
	}
	spans := m.store.ByTrace(uint64(id))
	out := make([]any, len(spans))
	for i, sp := range spans {
		out[i] = sp.Tuple()
	}
	return out
}

// Recent returns up to n of the newest locally recorded root client
// spans as "traceID service.method duration err" lines, newest first —
// how an operator discovers a trace id to pass to `dosgictl trace`.
func (m *MetricsRemote) Recent(n int64) []any {
	if m.store == nil || n <= 0 {
		return nil
	}
	all := m.store.All()
	var roots []obs.Span
	for _, sp := range all {
		if sp.Kind == obs.SpanClient && sp.Parent == 0 {
			roots = append(roots, sp)
		}
	}
	// All() is oldest-first; take the tail and reverse it.
	if int64(len(roots)) > n {
		roots = roots[int64(len(roots))-n:]
	}
	out := make([]any, 0, len(roots))
	for i := len(roots) - 1; i >= 0; i-- {
		sp := roots[i]
		line := fmt.Sprintf("%016x %s.%s %s", sp.TraceID, sp.Service, sp.Method, sp.Duration())
		if sp.Err != "" {
			line += " err=" + sp.Err
		}
		out = append(out, line)
	}
	return out
}

// attrLines flattens an attribute map to sorted "key=value" lines, each
// prefixed (the provider name for Snapshot, empty for Read).
func attrLines(prefix string, attrs map[string]any) []any {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]any, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s%s=%v", prefix, k, attrs[k])
	}
	return out
}
