package services

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dosgi/internal/module"
)

// MetricsService is the JMX-server analog: named providers expose
// point-in-time attribute maps which management tooling (the monitoring
// module, the admin CLI) reads uniformly.
type MetricsService struct {
	mu        sync.Mutex
	providers map[string]func() map[string]any
}

// NewMetricsService returns an empty registry of metric providers.
func NewMetricsService() *MetricsService {
	return &MetricsService{providers: make(map[string]func() map[string]any)}
}

// RegisterProvider exposes a named attribute source (an "MBean").
func (m *MetricsService) RegisterProvider(name string, provider func() map[string]any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.providers[name] = provider
}

// UnregisterProvider removes a source.
func (m *MetricsService) UnregisterProvider(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.providers, name)
}

// Names lists registered providers, sorted.
func (m *MetricsService) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.providers))
	for name := range m.providers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Read returns the attributes of one provider. A panicking provider —
// one buggy MBean — must not take down the reader (the admin plane polls
// every provider in one sweep): the panic is contained to an "error"
// attribute in that provider's map.
func (m *MetricsService) Read(name string) (attrs map[string]any, ok bool) {
	m.mu.Lock()
	provider, ok := m.providers[name]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	defer func() {
		if r := recover(); r != nil {
			attrs = map[string]any{"error": fmt.Sprintf("provider panic: %v", r)}
			ok = true
		}
	}()
	return provider(), true
}

// Snapshot reads every provider.
func (m *MetricsService) Snapshot() map[string]map[string]any {
	out := make(map[string]map[string]any)
	for _, name := range m.Names() {
		if attrs, ok := m.Read(name); ok {
			out[name] = attrs
		}
	}
	return out
}

// FrameworkProvider exposes bundle/service counts of a framework — what an
// administrator sees on the JMX console.
func FrameworkProvider(f *module.Framework) func() map[string]any {
	return func() map[string]any {
		bundles := f.Bundles()
		states := make(map[string]int)
		for _, b := range bundles {
			states[b.State().String()]++
		}
		refs, _ := f.SystemContext().ServiceReferences("", "")
		attrs := map[string]any{
			"bundles":  len(bundles),
			"services": len(refs),
		}
		for state, n := range states {
			attrs["bundles."+state] = n
		}
		return attrs
	}
}

// ProvisionCounters aggregates one node's bundle-provisioning activity so
// experiments and operators can assert on it: artifacts fetched from
// replicas, payload bytes moved over the wire, artifacts the verifier
// rejected (digest or signature mismatch, policy denial), and fetch
// attempts that failed over to another replica.
type ProvisionCounters struct {
	ArtifactsFetched       atomic.Int64
	BytesTransferred       atomic.Int64
	VerificationRejections atomic.Int64
	FetchRetries           atomic.Int64
}

// Provider exposes the counters as a metrics attribute source.
func (c *ProvisionCounters) Provider() func() map[string]any {
	return func() map[string]any {
		return map[string]any{
			"artifactsFetched":       c.ArtifactsFetched.Load(),
			"bytesTransferred":       c.BytesTransferred.Load(),
			"verificationRejections": c.VerificationRejections.Load(),
			"fetchRetries":           c.FetchRetries.Load(),
		}
	}
}

// MetricsBundleDefinition packages the metrics service as a bundle.
func MetricsBundleDefinition(svc *MetricsService) *module.Definition {
	return &module.Definition{
		ManifestText: `Bundle-SymbolicName: javax.management
Bundle-Version: 1.0.0
Bundle-Activator: javax.management.Activator
Export-Package: javax.management
`,
		Classes: map[string]any{
			"javax.management.MBeanServer": "interface:MBeanServer",
		},
		NewActivator: func() module.Activator {
			var reg *module.ServiceRegistration
			return &module.ActivatorFuncs{
				OnStart: func(ctx *module.Context) error {
					svc.RegisterProvider("framework:"+ctx.Framework().Name(), FrameworkProvider(ctx.Framework()))
					var err error
					reg, err = ctx.RegisterSingle(MetricsServiceClass, svc, nil)
					return err
				},
				OnStop: func(ctx *module.Context) error {
					svc.UnregisterProvider("framework:" + ctx.Framework().Name())
					if reg != nil {
						_ = reg.Unregister()
					}
					return nil
				},
			}
		},
	}
}
