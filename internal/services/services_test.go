package services

import (
	"testing"
	"time"

	"dosgi/internal/ipvs"
	"dosgi/internal/module"
	"dosgi/internal/netsim"
	"dosgi/internal/sim"
	"dosgi/internal/vjvm"
)

func TestLogService(t *testing.T) {
	eng := sim.New(1)
	log := NewLogService(eng, 3)
	var seen []LogEntry
	log.AddListener(func(e LogEntry) { seen = append(seen, e) })

	log.Log(LogInfo, "bundleA", "hello %d", 1)
	eng.RunFor(time.Second)
	log.Log(LogError, "bundleB", "oops")

	entries := log.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Message != "hello 1" || entries[0].Level != LogInfo {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].Time != time.Second {
		t.Fatalf("entry 1 time = %v", entries[1].Time)
	}
	if len(seen) != 2 {
		t.Fatalf("listener saw %d", len(seen))
	}

	// Capacity bound.
	for i := 0; i < 5; i++ {
		log.Log(LogDebug, "x", "fill")
	}
	if log.Count() != 3 {
		t.Fatalf("count = %d, want capacity 3", log.Count())
	}
}

func TestLogBundle(t *testing.T) {
	eng := sim.New(1)
	defs := module.NewDefinitionRegistry()
	defs.MustAdd("loc:log", LogBundleDefinition(eng))
	f := module.New(module.WithDefinitions(defs))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	b, err := f.InstallBundle("loc:log")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	ref, ok := f.SystemContext().ServiceReference(LogServiceClass)
	if !ok {
		t.Fatal("log service not registered")
	}
	svc, err := f.SystemContext().GetService(ref)
	if err != nil {
		t.Fatal(err)
	}
	svc.(*LogService).Log(LogInfo, "test", "works")
	if svc.(*LogService).Count() != 1 {
		t.Fatal("log did not record")
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.SystemContext().ServiceReference(LogServiceClass); ok {
		t.Fatal("log service survived bundle stop")
	}
}

type httpFixture struct {
	eng    *sim.Engine
	net    *netsim.Network
	vm     *vjvm.VJVM
	svc    *HTTPService
	client *netsim.NIC
	resps  []HTTPResponse
}

func newHTTPFixture(t *testing.T) *httpFixture {
	t.Helper()
	eng := sim.New(1)
	net := netsim.NewNetwork(eng, netsim.WithLatency(time.Millisecond))
	vm := vjvm.New(eng, vjvm.WithCapacity(1000))
	if _, err := vm.CreateDomain("tenant"); err != nil {
		t.Fatal(err)
	}

	net.AttachNode("server")
	if err := net.AssignIP("10.0.0.1", "server"); err != nil {
		t.Fatal(err)
	}
	nic, _ := net.NIC("server")
	svc := NewHTTPService(eng, nic, netsim.Addr{IP: "10.0.0.1", Port: 80}, vm, "tenant")

	client := net.AttachNode("client")
	if err := net.AssignIP("10.0.0.9", "client"); err != nil {
		t.Fatal(err)
	}
	fx := &httpFixture{eng: eng, net: net, vm: vm, svc: svc, client: client}
	if err := client.Listen(netsim.Addr{IP: "10.0.0.9", Port: 5000}, func(m netsim.Message) {
		if resp, ok := m.Payload.(HTTPResponse); ok {
			fx.resps = append(fx.resps, resp)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *httpFixture) send(req HTTPRequest) {
	_ = fx.client.Send(netsim.Addr{IP: "10.0.0.9", Port: 5000}, fx.svc.Addr(), req, 64)
}

func TestHTTPServiceServesWithCPUCost(t *testing.T) {
	fx := newHTTPFixture(t)
	fx.svc.RegisterServlet("/api", nil)
	if err := fx.svc.Start(); err != nil {
		t.Fatal(err)
	}
	fx.send(HTTPRequest{ID: 1, Path: "/api", CPUCost: 50 * time.Millisecond})
	fx.eng.Run()
	if len(fx.resps) != 1 || fx.resps[0].Status != StatusOK {
		t.Fatalf("resps = %+v", fx.resps)
	}
	// 1ms there + 50ms service + 1ms back.
	if got := fx.eng.Now(); got != 52*time.Millisecond {
		t.Fatalf("end-to-end = %v, want 52ms", got)
	}
	d, _ := fx.vm.Domain("tenant")
	if cpu := d.CPUTime(); cpu != 50*time.Millisecond {
		t.Fatalf("domain CPU = %v", cpu)
	}
	if st := fx.svc.Stats(); st.Served != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHTTPServiceNotFound(t *testing.T) {
	fx := newHTTPFixture(t)
	if err := fx.svc.Start(); err != nil {
		t.Fatal(err)
	}
	fx.send(HTTPRequest{ID: 1, Path: "/missing", CPUCost: time.Millisecond})
	fx.eng.Run()
	if len(fx.resps) != 1 || fx.resps[0].Status != StatusNotFound {
		t.Fatalf("resps = %+v", fx.resps)
	}
	// 404s burn no tenant CPU.
	d, _ := fx.vm.Domain("tenant")
	if d.CPUTime() != 0 {
		t.Fatal("not-found consumed CPU")
	}
}

func TestHTTPServiceQueueingUnderLoad(t *testing.T) {
	fx := newHTTPFixture(t)
	fx.svc.RegisterServlet("/api", nil)
	var latencies []time.Duration
	fx.svc.OnServed(func(_ HTTPRequest, _ int, l time.Duration) { latencies = append(latencies, l) })
	if err := fx.svc.Start(); err != nil {
		t.Fatal(err)
	}
	// Two concurrent 50ms requests on a 1-core domain: both finish at
	// ~100ms (processor sharing).
	fx.send(HTTPRequest{ID: 1, Path: "/api", CPUCost: 50 * time.Millisecond})
	fx.send(HTTPRequest{ID: 2, Path: "/api", CPUCost: 50 * time.Millisecond})
	fx.eng.Run()
	if len(latencies) != 2 {
		t.Fatalf("latencies = %v", latencies)
	}
	for _, l := range latencies {
		if l < 99*time.Millisecond || l > 101*time.Millisecond {
			t.Fatalf("latency = %v, want ~100ms under contention", l)
		}
	}
}

func TestHTTPServiceAnswersIpvsProbes(t *testing.T) {
	fx := newHTTPFixture(t)
	if err := fx.svc.Start(); err != nil {
		t.Fatal(err)
	}
	var probeReplies int
	if err := fx.client.Listen(netsim.Addr{IP: "10.0.0.9", Port: 6000}, func(m netsim.Message) {
		if _, ok := m.Payload.(ipvs.ProbeReply); ok {
			probeReplies++
		}
	}); err != nil {
		t.Fatal(err)
	}
	_ = fx.client.Send(netsim.Addr{IP: "10.0.0.9", Port: 6000}, fx.svc.Addr(),
		ipvs.Probe{ReplyTo: netsim.Addr{IP: "10.0.0.9", Port: 6000}, Seq: 1}, 64)
	fx.eng.Run()
	if probeReplies != 1 {
		t.Fatalf("probe replies = %d", probeReplies)
	}
}

func TestHTTPServiceUnavailableWhenDomainGone(t *testing.T) {
	fx := newHTTPFixture(t)
	fx.svc.RegisterServlet("/api", nil)
	if err := fx.svc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fx.vm.RemoveDomain("tenant"); err != nil {
		t.Fatal(err)
	}
	fx.send(HTTPRequest{ID: 1, Path: "/api", CPUCost: time.Millisecond})
	fx.eng.Run()
	if len(fx.resps) != 1 || fx.resps[0].Status != StatusUnavailable {
		t.Fatalf("resps = %+v", fx.resps)
	}
}

func TestHTTPBundleLifecycle(t *testing.T) {
	fx := newHTTPFixture(t)
	fx.svc.RegisterServlet("/", nil)
	defs := module.NewDefinitionRegistry()
	defs.MustAdd("loc:http", HTTPBundleDefinition("com.tenant.http", fx.svc))
	f := module.New(module.WithDefinitions(defs))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	b, err := f.InstallBundle("loc:http")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	fx.send(HTTPRequest{ID: 1, Path: "/", CPUCost: time.Millisecond})
	fx.eng.Run()
	if len(fx.resps) != 1 {
		t.Fatal("bundle-managed service did not serve")
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	fx.send(HTTPRequest{ID: 2, Path: "/", CPUCost: time.Millisecond})
	fx.eng.Run()
	if len(fx.resps) != 1 {
		t.Fatal("stopped bundle still serving")
	}
}

func TestMetricsService(t *testing.T) {
	m := NewMetricsService()
	m.RegisterProvider("node", func() map[string]any {
		return map[string]any{"cpu": 42}
	})
	attrs, ok := m.Read("node")
	if !ok || attrs["cpu"] != 42 {
		t.Fatalf("Read = %v, %v", attrs, ok)
	}
	if _, ok := m.Read("missing"); ok {
		t.Fatal("missing provider read")
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap["node"]["cpu"] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	m.UnregisterProvider("node")
	if len(m.Names()) != 0 {
		t.Fatal("unregister failed")
	}
}

func TestMetricsBundle(t *testing.T) {
	defs := module.NewDefinitionRegistry()
	svc := NewMetricsService()
	defs.MustAdd("loc:metrics", MetricsBundleDefinition(svc))
	f := module.New(module.WithName("host"), module.WithDefinitions(defs))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	b, err := f.InstallBundle("loc:metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	attrs, ok := svc.Read("framework:host")
	if !ok {
		t.Fatal("framework provider missing")
	}
	if attrs["bundles"].(int) < 2 {
		t.Fatalf("attrs = %v", attrs)
	}
	if _, ok := f.SystemContext().ServiceReference(MetricsServiceClass); !ok {
		t.Fatal("metrics service not registered")
	}
}
