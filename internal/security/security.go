// Package security reconstructs the role the Java SecurityManager plays in
// the paper: per-subject permissions enforced at the filesystem (SAN),
// network (netsim) and service/package (module) boundaries. "To address
// isolation at the filesystem and network levels we rely on the
// SecurityManager provided by the JAVA platform that should be configured
// by the administrator according to the business policies" (§2).
package security

import (
	"fmt"
	"strings"
	"sync"
)

// PermissionType classifies what a permission guards.
type PermissionType int

// Permission types.
const (
	PermFile PermissionType = iota + 1
	PermSocket
	PermService
	PermPackage
	PermAdmin
)

func (t PermissionType) String() string {
	switch t {
	case PermFile:
		return "file"
	case PermSocket:
		return "socket"
	case PermService:
		return "service"
	case PermPackage:
		return "package"
	case PermAdmin:
		return "admin"
	}
	return "unknown"
}

// Actions for the built-in permission types.
const (
	ActionRead     = "read"
	ActionWrite    = "write"
	ActionDelete   = "delete"
	ActionConnect  = "connect"
	ActionListen   = "listen"
	ActionBind     = "bind"
	ActionRegister = "register"
	ActionGet      = "get"
	ActionImport   = "import"
	ActionLifecyle = "lifecycle"
	// ActionDeploy guards provisioned-artifact installation: the
	// provisioning verifier checks the artifact's signer subject holds it
	// for the install location before a fetched bundle may be deployed.
	ActionDeploy = "deploy"
)

// Permission is a (type, target pattern, actions) triple. Target patterns
// support a trailing "*" wildcard ("/data/tenant-a/*", "com.example.*",
// "10.0.0.1:*").
type Permission struct {
	Type    PermissionType
	Target  string
	Actions []string
}

// NewPermission builds a permission.
func NewPermission(t PermissionType, target string, actions ...string) Permission {
	return Permission{Type: t, Target: target, Actions: actions}
}

// FilePermission guards SAN paths.
func FilePermission(path string, actions ...string) Permission {
	return NewPermission(PermFile, path, actions...)
}

// SocketPermission guards network endpoints ("ip:port", either side may be
// "*").
func SocketPermission(endpoint string, actions ...string) Permission {
	return NewPermission(PermSocket, endpoint, actions...)
}

// ServicePermission guards service class names.
func ServicePermission(class string, actions ...string) Permission {
	return NewPermission(PermService, class, actions...)
}

// PackagePermission guards package delegation across the virtual-instance
// boundary.
func PackagePermission(pkg string, actions ...string) Permission {
	return NewPermission(PermPackage, pkg, actions...)
}

// AdminPermission guards management operations.
func AdminPermission(actions ...string) Permission {
	return NewPermission(PermAdmin, "*", actions...)
}

// implies reports whether granted covers requested.
func (p Permission) implies(req Permission) bool {
	if p.Type != req.Type {
		return false
	}
	if !matchTarget(p.Target, req.Target) {
		return false
	}
	for _, need := range req.Actions {
		if !containsAction(p.Actions, need) {
			return false
		}
	}
	return true
}

func containsAction(granted []string, need string) bool {
	for _, a := range granted {
		if a == "*" || a == need {
			return true
		}
	}
	return false
}

// matchTarget matches a pattern against a concrete target. The pattern may
// end with "*" (prefix match); socket patterns additionally match per
// component ("host:port" where either side may be "*").
func matchTarget(pattern, target string) bool {
	if pattern == "*" || pattern == target {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(target, strings.TrimSuffix(pattern, "*"))
	}
	// host:port with wildcard components.
	pi := strings.LastIndex(pattern, ":")
	ti := strings.LastIndex(target, ":")
	if pi > 0 && ti > 0 {
		ph, pp := pattern[:pi], pattern[pi+1:]
		th, tp := target[:ti], target[ti+1:]
		hostOK := ph == "*" || ph == th ||
			(strings.HasSuffix(ph, "*") && strings.HasPrefix(th, strings.TrimSuffix(ph, "*")))
		portOK := pp == "*" || pp == tp
		return hostOK && portOK
	}
	return false
}

// AccessDeniedError reports a failed permission check.
type AccessDeniedError struct {
	Subject    string
	Permission Permission
}

func (e *AccessDeniedError) Error() string {
	return fmt.Sprintf("security: subject %q denied %s access to %q (actions %v)",
		e.Subject, e.Permission.Type, e.Permission.Target, e.Permission.Actions)
}

// Policy maps subjects (customer / instance / bundle identifiers) to
// granted permissions. The zero value denies everything; NewPolicy
// configures the default stance.
type Policy struct {
	mu           sync.RWMutex
	grants       map[string][]Permission
	defaultAllow bool
}

// NewPolicy creates a policy. When defaultAllow is true, subjects with no
// explicit grants are unrestricted (the stance of a framework with no
// SecurityManager installed).
func NewPolicy(defaultAllow bool) *Policy {
	return &Policy{grants: make(map[string][]Permission), defaultAllow: defaultAllow}
}

// Grant adds permissions for subject.
func (p *Policy) Grant(subject string, perms ...Permission) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grants[subject] = append(p.grants[subject], perms...)
}

// Revoke removes all grants for subject.
func (p *Policy) Revoke(subject string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.grants, subject)
}

// Check verifies that subject holds perm; it returns *AccessDeniedError
// otherwise. A subject with no grants is governed by the default stance.
func (p *Policy) Check(subject string, perm Permission) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	grants, known := p.grants[subject]
	if !known {
		if p.defaultAllow {
			return nil
		}
		return &AccessDeniedError{Subject: subject, Permission: perm}
	}
	for _, g := range grants {
		if g.implies(perm) {
			return nil
		}
	}
	return &AccessDeniedError{Subject: subject, Permission: perm}
}

// Allowed is Check as a boolean.
func (p *Policy) Allowed(subject string, perm Permission) bool {
	return p.Check(subject, perm) == nil
}

// Subjects lists subjects with explicit grants.
func (p *Policy) Subjects() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.grants))
	for s := range p.grants {
		out = append(out, s)
	}
	return out
}
