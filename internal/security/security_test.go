package security

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPolicyDefaultStance(t *testing.T) {
	allow := NewPolicy(true)
	deny := NewPolicy(false)
	perm := FilePermission("/data/x", ActionRead)
	if err := allow.Check("unknown", perm); err != nil {
		t.Errorf("default-allow denied: %v", err)
	}
	if err := deny.Check("unknown", perm); err == nil {
		t.Error("default-deny allowed")
	}
}

func TestGrantAndCheck(t *testing.T) {
	p := NewPolicy(false)
	p.Grant("tenant-a",
		FilePermission("/data/tenant-a/*", ActionRead, ActionWrite),
		SocketPermission("10.0.0.5:8080", ActionBind, ActionListen),
		ServicePermission("log.Service", ActionGet),
		PackagePermission("com.base.*", ActionImport),
	)

	tests := []struct {
		name    string
		subject string
		perm    Permission
		allowed bool
	}{
		{"own file read", "tenant-a", FilePermission("/data/tenant-a/db", ActionRead), true},
		{"own file write", "tenant-a", FilePermission("/data/tenant-a/db", ActionWrite), true},
		{"own file delete denied", "tenant-a", FilePermission("/data/tenant-a/db", ActionDelete), false},
		{"foreign file", "tenant-a", FilePermission("/data/tenant-b/db", ActionRead), false},
		{"exact socket bind", "tenant-a", SocketPermission("10.0.0.5:8080", ActionBind), true},
		{"other port", "tenant-a", SocketPermission("10.0.0.5:9090", ActionBind), false},
		{"service get", "tenant-a", ServicePermission("log.Service", ActionGet), true},
		{"service register denied", "tenant-a", ServicePermission("log.Service", ActionRegister), false},
		{"package prefix", "tenant-a", PackagePermission("com.base.util", ActionImport), true},
		{"package outside prefix", "tenant-a", PackagePermission("com.other", ActionImport), false},
		{"unknown subject", "tenant-b", FilePermission("/data/tenant-a/db", ActionRead), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := p.Check(tt.subject, tt.perm)
			if (err == nil) != tt.allowed {
				t.Errorf("Check = %v, want allowed=%v", err, tt.allowed)
			}
			if err != nil {
				var denied *AccessDeniedError
				if !errors.As(err, &denied) {
					t.Errorf("error type = %T", err)
				}
			}
		})
	}
}

func TestWildcardActions(t *testing.T) {
	p := NewPolicy(false)
	p.Grant("admin", AdminPermission("*"))
	if !p.Allowed("admin", AdminPermission(ActionLifecyle)) {
		t.Error("wildcard action grant failed")
	}
}

func TestSocketWildcards(t *testing.T) {
	p := NewPolicy(false)
	p.Grant("svc", SocketPermission("10.0.0.5:*", ActionBind))
	p.Grant("svc", SocketPermission("*:80", ActionConnect))
	if !p.Allowed("svc", SocketPermission("10.0.0.5:1234", ActionBind)) {
		t.Error("host:* failed")
	}
	if p.Allowed("svc", SocketPermission("10.0.0.6:1234", ActionBind)) {
		t.Error("wrong host allowed")
	}
	if !p.Allowed("svc", SocketPermission("192.168.1.1:80", ActionConnect)) {
		t.Error("*:port failed")
	}
	if p.Allowed("svc", SocketPermission("192.168.1.1:81", ActionConnect)) {
		t.Error("wrong port allowed")
	}
}

func TestRevoke(t *testing.T) {
	p := NewPolicy(false)
	p.Grant("s", FilePermission("/x", ActionRead))
	if !p.Allowed("s", FilePermission("/x", ActionRead)) {
		t.Fatal("grant missing")
	}
	p.Revoke("s")
	if p.Allowed("s", FilePermission("/x", ActionRead)) {
		t.Fatal("revoke ineffective")
	}
}

func TestTypeMismatchNeverImplies(t *testing.T) {
	p := NewPolicy(false)
	p.Grant("s", FilePermission("*", "*"))
	if p.Allowed("s", SocketPermission("1.2.3.4:80", ActionConnect)) {
		t.Fatal("file grant implied socket permission")
	}
}

// Property: a permission implies itself, and prefix-wildcard grants imply
// any extension of the prefix.
func TestImpliesProperty(t *testing.T) {
	sanitize := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r != '*' && r != ':' && r > 0x20 && r < 0x7f {
				out = append(out, r)
			}
			if len(out) > 12 {
				break
			}
		}
		if len(out) == 0 {
			return "x"
		}
		return string(out)
	}
	prop := func(rawTarget, rawSuffix string) bool {
		target, suffix := sanitize(rawTarget), sanitize(rawSuffix)
		self := FilePermission(target, ActionRead)
		if !self.implies(self) {
			return false
		}
		wild := FilePermission(target+"*", ActionRead)
		return wild.implies(FilePermission(target+suffix, ActionRead))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSubjects(t *testing.T) {
	p := NewPolicy(false)
	p.Grant("a", AdminPermission("*"))
	p.Grant("b", AdminPermission("*"))
	subs := p.Subjects()
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v", subs)
	}
}
