package security

import "dosgi/internal/module"

// BundleChecker adapts a Policy to the module.PermissionChecker hook,
// identifying bundles by a caller-supplied subject function (typically the
// owning virtual instance, so every bundle of a customer shares one
// subject).
type BundleChecker struct {
	policy  *Policy
	subject func(b *module.Bundle) string
}

var _ module.PermissionChecker = (*BundleChecker)(nil)

// NewBundleChecker builds a checker. When subject is nil the bundle's
// symbolic name is the subject.
func NewBundleChecker(policy *Policy, subject func(b *module.Bundle) string) *BundleChecker {
	if subject == nil {
		subject = func(b *module.Bundle) string { return b.SymbolicName() }
	}
	return &BundleChecker{policy: policy, subject: subject}
}

// CheckServiceRegister implements module.PermissionChecker.
func (c *BundleChecker) CheckServiceRegister(b *module.Bundle, classes []string) error {
	subj := c.subject(b)
	for _, class := range classes {
		if err := c.policy.Check(subj, ServicePermission(class, ActionRegister)); err != nil {
			return err
		}
	}
	return nil
}

// CheckServiceGet implements module.PermissionChecker.
func (c *BundleChecker) CheckServiceGet(b *module.Bundle, ref *module.ServiceReference) error {
	subj := c.subject(b)
	for _, class := range ref.Classes() {
		if c.policy.Check(subj, ServicePermission(class, ActionGet)) == nil {
			return nil
		}
	}
	return c.policy.Check(subj, ServicePermission(ref.Classes()[0], ActionGet))
}

// CheckPackageImport implements module.PermissionChecker.
func (c *BundleChecker) CheckPackageImport(b *module.Bundle, pkg string) error {
	return c.policy.Check(c.subject(b), PackagePermission(pkg, ActionImport))
}
