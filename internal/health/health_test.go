package health

import (
	"reflect"
	"testing"
)

func TestStatusStringRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusDegraded, StatusCritical} {
		got, ok := ParseStatus(s.String())
		if !ok || got != s {
			t.Fatalf("ParseStatus(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := ParseStatus("bogus"); ok {
		t.Fatal("ParseStatus accepted garbage")
	}
	if Status(99).String() != "UNKNOWN" {
		t.Fatalf("out-of-range status renders %q", Status(99).String())
	}
}

// signal is a settable test signal.
type signal struct {
	v  float64
	ok bool
}

func (s *signal) read() (float64, bool) { return s.v, s.ok }

func TestEvaluatorTransitions(t *testing.T) {
	e := New("node01")
	sig := &signal{ok: true}
	e.AddRule(Rule{
		Name: "p99>5ms", Component: "remote", Signal: sig.read,
		Degraded: 5, Critical: 50,
	})

	// First tick at OK: complete records, no transition.
	if tr := e.Tick(); len(tr) != 0 {
		t.Fatalf("OK start produced transitions: %+v", tr)
	}
	recs := e.Records()
	want := []Record{{Component: "remote", Node: "node01", Status: StatusOK}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("records = %+v, want %+v", recs, want)
	}

	// Breach: one transition OK→DEGRADED with the rule as cause.
	sig.v = 10
	tr := e.Tick()
	if len(tr) != 1 || tr[0].From != StatusOK || tr[0].Record.Status != StatusDegraded ||
		tr[0].Record.Cause != "p99>5ms" {
		t.Fatalf("breach transition = %+v", tr)
	}
	// Steady breach: silent.
	if tr := e.Tick(); len(tr) != 0 {
		t.Fatalf("steady breach produced transitions: %+v", tr)
	}

	// Escalation to CRITICAL, then heal back to OK.
	sig.v = 100
	tr = e.Tick()
	if len(tr) != 1 || tr[0].From != StatusDegraded || tr[0].Record.Status != StatusCritical {
		t.Fatalf("escalation transition = %+v", tr)
	}
	sig.v = 0
	tr = e.Tick()
	if len(tr) != 1 || tr[0].From != StatusCritical || tr[0].Record.Status != StatusOK ||
		tr[0].Record.Cause != "" {
		t.Fatalf("heal transition = %+v", tr)
	}
}

func TestEvaluatorHysteresis(t *testing.T) {
	e := New("n")
	sig := &signal{ok: true}
	e.AddRule(Rule{
		Name: "r", Component: "c", Signal: sig.read,
		Degraded: 5, Critical: 50, Raise: 2, Clear: 3,
	})
	e.Tick()

	// One hot tick is not enough to raise…
	sig.v = 10
	if tr := e.Tick(); len(tr) != 0 {
		t.Fatalf("raised after 1 tick with Raise=2: %+v", tr)
	}
	// …the second is.
	if tr := e.Tick(); len(tr) != 1 || tr[0].Record.Status != StatusDegraded {
		t.Fatalf("no raise after 2 ticks: %+v", tr)
	}
	// An interrupted clear streak starts over: 2 cool ticks, a hot blip,
	// then the full Clear=3 run before the heal lands.
	sig.v = 0
	e.Tick()
	e.Tick()
	sig.v = 10
	e.Tick()
	sig.v = 0
	e.Tick()
	e.Tick()
	if tr := e.Tick(); len(tr) != 1 || tr[0].Record.Status != StatusOK {
		t.Fatalf("no heal after full clear streak: %+v", tr)
	}
}

func TestWorstRuleWinsPerComponent(t *testing.T) {
	e := New("n")
	a, b := &signal{ok: true}, &signal{ok: true}
	e.AddRule(Rule{Name: "mild", Component: "c", Signal: a.read, Degraded: 5, Critical: 50})
	e.AddRule(Rule{Name: "hard", Component: "c", Signal: b.read, Degraded: 5, Critical: 50})
	a.v, b.v = 10, 100
	tr := e.Tick()
	if len(tr) != 1 || tr[0].Record.Status != StatusCritical || tr[0].Record.Cause != "hard" {
		t.Fatalf("worst rule did not win: %+v", tr)
	}
	if e.Worst() != StatusCritical {
		t.Fatalf("Worst() = %v", e.Worst())
	}
	// The critical rule heals; the mild one still holds DEGRADED and the
	// cause hands over without a phantom trip through OK.
	b.v = 0
	tr = e.Tick()
	if len(tr) != 1 || tr[0].From != StatusCritical || tr[0].Record.Status != StatusDegraded ||
		tr[0].Record.Cause != "mild" {
		t.Fatalf("cause handover transition = %+v", tr)
	}
}

func TestNoDataReadsHealthy(t *testing.T) {
	e := New("n")
	sig := &signal{v: 100, ok: false} // value present but flagged absent
	e.AddRule(Rule{Name: "r", Component: "c", Signal: sig.read, Degraded: 5, Critical: 50})
	e.Tick()
	if tr := e.Tick(); len(tr) != 0 {
		t.Fatalf("absent sample raised: %+v", tr)
	}
	sig.ok = true
	if tr := e.Tick(); len(tr) != 1 || tr[0].Record.Status != StatusCritical {
		t.Fatalf("present sample did not raise: %+v", tr)
	}
	// Data dries up again: the rule clears.
	sig.ok = false
	if tr := e.Tick(); len(tr) != 1 || tr[0].Record.Status != StatusOK {
		t.Fatalf("dried-up sample did not heal: %+v", tr)
	}
}

func TestProviderAttrs(t *testing.T) {
	e := New("n")
	sig := &signal{v: 10, ok: true}
	e.AddRule(Rule{Name: "r", Component: "c", Signal: sig.read, Degraded: 5, Critical: 50})
	e.Tick()
	attrs := e.Provider()()
	if attrs["c.status"] != "DEGRADED" || attrs["c.level"] != int64(StatusDegraded) ||
		attrs["c.cause"] != "r" || attrs["worst"] != "DEGRADED" || attrs["rules"] != int64(1) {
		t.Fatalf("provider attrs = %+v", attrs)
	}
}
