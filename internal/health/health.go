// Package health is the per-node health evaluator of the cluster health
// plane: threshold rules run over signals sampled from the other planes
// (observability histograms, monitor resource breaches, SLA violation
// counts) and fold into one Record per component — OK, DEGRADED or
// CRITICAL plus the rule that put it there. The package itself is
// dependency-free: signals are closures supplied by whoever wires the
// evaluator (the cluster, the daemon), so the record type can be
// replicated through the migrate directory without import cycles, and
// transitions can ride the dosgi.events broker as alerts.
package health

import (
	"sort"
	"sync"
)

// Status is a component's health level. The order is severity order:
// worst rule wins when several rules watch the same component.
type Status int

const (
	StatusOK Status = iota
	StatusDegraded
	StatusCritical
)

// String renders the wire/admin form: OK, DEGRADED, CRITICAL.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusDegraded:
		return "DEGRADED"
	case StatusCritical:
		return "CRITICAL"
	default:
		return "UNKNOWN"
	}
}

// ParseStatus decodes the wire form back into a Status.
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "OK":
		return StatusOK, true
	case "DEGRADED":
		return StatusDegraded, true
	case "CRITICAL":
		return StatusCritical, true
	default:
		return StatusOK, false
	}
}

// Record is one component's health on one node. It is a flat comparable
// struct — the migrate record engine requires comparability for exact
// deltas — and Cause is a STABLE description of the firing rule (its
// name and threshold, never a live sample value or timestamp), so a
// converged anti-entropy resync compares equal and stays silent.
type Record struct {
	Component string // e.g. "remote", "resources", "sla"
	Node      string
	Status    Status
	Cause     string // firing rule description; "" when OK
}

// Transition is one status change produced by a Tick: the new record
// plus the status it replaced. Transitions — not steady states — are
// what the alert stream pushes.
type Transition struct {
	Record Record
	From   Status
}

// Rule watches one scalar signal for one component. Signal returns the
// current sample and whether a sample was available this tick (no data —
// e.g. an empty histogram window — counts as healthy). Thresholds are
// inclusive lower bounds: value ≥ Critical is CRITICAL, else ≥ Degraded
// is DEGRADED. Raise and Clear are consecutive-tick hysteresis counts
// (default 1): Raise ticks at a worse level before the rule escalates,
// Clear ticks at a better level before it comes back down — one noisy
// sample neither raises an alert nor heals a real breach.
type Rule struct {
	Name      string
	Component string
	Signal    func() (float64, bool)
	Degraded  float64
	Critical  float64
	Raise     int
	Clear     int
}

// level maps a sample to the rule's instantaneous severity.
func (r Rule) level(v float64) Status {
	switch {
	case v >= r.Critical:
		return StatusCritical
	case v >= r.Degraded:
		return StatusDegraded
	default:
		return StatusOK
	}
}

// ruleState carries a rule's hysteresis: the level it currently asserts,
// and the streak of ticks at a different candidate level.
type ruleState struct {
	rule      Rule
	active    Status
	candidate Status
	streak    int
}

func (rs *ruleState) tick() {
	lvl := StatusOK
	if v, ok := rs.rule.Signal(); ok {
		lvl = rs.rule.level(v)
	}
	if lvl == rs.active {
		rs.streak = 0
		return
	}
	if lvl != rs.candidate || rs.streak == 0 {
		rs.candidate = lvl
		rs.streak = 0
	}
	rs.streak++
	need := rs.rule.Raise
	if lvl < rs.active {
		need = rs.rule.Clear
	}
	if need < 1 {
		need = 1
	}
	if rs.streak >= need {
		rs.active = lvl
		rs.streak = 0
	}
}

// Evaluator runs the rule set on every Tick and tracks the resulting
// per-component records. It is the per-node half of the health plane;
// replication and alerting are layered on top of the Transition slice
// Tick returns.
type Evaluator struct {
	node string

	mu      sync.Mutex
	rules   []*ruleState
	current map[string]Record // component → last published record
}

// New builds an evaluator for this node's components.
func New(node string) *Evaluator {
	return &Evaluator{node: node, current: make(map[string]Record)}
}

// Node returns the node id the evaluator stamps into records.
func (e *Evaluator) Node() string { return e.node }

// AddRule registers a rule. Rules added after ticks began join cleanly:
// their component starts at OK like everything else.
func (e *Evaluator) AddRule(r Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, &ruleState{rule: r})
}

// RuleCount returns the number of registered rules.
func (e *Evaluator) RuleCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.rules)
}

// Tick samples every rule once, folds rule levels into per-component
// records (worst firing rule wins; its name becomes the Cause) and
// returns the transitions — components whose status changed since the
// previous Tick, including the first Tick's departures from implicit OK.
// Steady states return an empty slice.
func (e *Evaluator) Tick() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()

	components := make(map[string]Record)
	for _, rs := range e.rules {
		rs.tick()
		rec, ok := components[rs.rule.Component]
		if !ok {
			rec = Record{Component: rs.rule.Component, Node: e.node, Status: StatusOK}
		}
		if rs.active > rec.Status {
			rec.Status = rs.active
			rec.Cause = rs.rule.Name
		}
		components[rs.rule.Component] = rec
	}

	var out []Transition
	for comp, rec := range components {
		prev, known := e.current[comp]
		e.current[comp] = rec
		// A component's implicit initial state is OK: a first Tick that
		// lands on OK is not a transition, and a cause change at the same
		// status updates the record without alerting.
		from := StatusOK
		if known {
			from = prev.Status
		}
		if rec.Status != from {
			out = append(out, Transition{Record: rec, From: from})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Record.Component < out[j].Record.Component })
	return out
}

// Records returns the current per-component records, sorted by component.
func (e *Evaluator) Records() []Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Record, 0, len(e.current))
	for _, rec := range e.current {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// RecordFor returns the current record for one component.
func (e *Evaluator) RecordFor(component string) (Record, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.current[component]
	return rec, ok
}

// Worst returns the worst current status across all components — the
// node-level health roll-up the admin plane prints.
func (e *Evaluator) Worst() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := StatusOK
	for _, rec := range e.current {
		if rec.Status > worst {
			worst = rec.Status
		}
	}
	return worst
}

// Provider exposes the evaluator as a MetricsService attribute source:
// per-component status levels plus the node roll-up, under health:<node>.
func (e *Evaluator) Provider() func() map[string]any {
	return func() map[string]any {
		e.mu.Lock()
		defer e.mu.Unlock()
		out := make(map[string]any, len(e.current)+2)
		worst := StatusOK
		for comp, rec := range e.current {
			out[comp+".status"] = rec.Status.String()
			out[comp+".level"] = int64(rec.Status)
			if rec.Cause != "" {
				out[comp+".cause"] = rec.Cause
			}
			if rec.Status > worst {
				worst = rec.Status
			}
		}
		out["worst"] = worst.String()
		out["rules"] = int64(len(e.rules))
		return out
	}
}
