// Package filter implements the OSGi service filter language, the RFC
// 1960-derived LDAP search filter syntax used throughout the platform to
// select services and instances:
//
//	(&(objectClass=http.Service)(port>=80)(!(internal=true)))
//
// Supported operators are =, ~= (approximate), >=, <=, presence (=*) and
// substring patterns (a=*b*c). Values compare numerically when the
// property value is a numeric Go type, as booleans for bools, and as
// strings otherwise. Multi-valued properties (slices) match when any
// element matches.
package filter

import (
	"fmt"
	"strconv"
	"strings"
)

// Filter is a parsed, immutable filter expression.
type Filter struct {
	root node
	text string
}

// Parse compiles the filter string s.
func Parse(s string) (*Filter, error) {
	p := &parser{input: s}
	n, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, &SyntaxError{Filter: s, Pos: p.pos, Msg: "trailing characters"}
	}
	return &Filter{root: n, text: s}, nil
}

// MustParse is Parse for statically known filters; it panics on error.
func MustParse(s string) *Filter {
	f, err := Parse(s)
	if err != nil {
		panic(fmt.Sprintf("filter: MustParse(%q): %v", s, err))
	}
	return f
}

// Matches reports whether props satisfies the filter. Property names are
// case-insensitive, as in OSGi.
func (f *Filter) Matches(props map[string]any) bool {
	if f == nil {
		return true
	}
	return f.root.matches(normalizeKeys(props), true)
}

// MatchesCase is Matches with case-sensitive property names.
func (f *Filter) MatchesCase(props map[string]any) bool {
	if f == nil {
		return true
	}
	return f.root.matches(props, false)
}

// String returns the canonical text of the filter.
func (f *Filter) String() string {
	if f == nil {
		return ""
	}
	return f.root.describe()
}

// SyntaxError describes a malformed filter string.
type SyntaxError struct {
	Filter string
	Pos    int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("filter: invalid filter %q at position %d: %s", e.Filter, e.Pos, e.Msg)
}

func normalizeKeys(props map[string]any) map[string]any {
	out := make(map[string]any, len(props))
	for k, v := range props {
		out[strings.ToLower(k)] = v
	}
	return out
}

type node interface {
	// matches evaluates the node; fold selects case-insensitive property
	// names (the parsed attribute is pre-lowered in attrFold).
	matches(props map[string]any, fold bool) bool
	describe() string
}

type andNode struct{ children []node }

func (n *andNode) matches(props map[string]any, fold bool) bool {
	for _, c := range n.children {
		if !c.matches(props, fold) {
			return false
		}
	}
	return true
}

func (n *andNode) describe() string { return describeComposite("&", n.children) }

type orNode struct{ children []node }

func (n *orNode) matches(props map[string]any, fold bool) bool {
	for _, c := range n.children {
		if c.matches(props, fold) {
			return true
		}
	}
	return false
}

func (n *orNode) describe() string { return describeComposite("|", n.children) }

type notNode struct{ child node }

func (n *notNode) matches(props map[string]any, fold bool) bool {
	return !n.child.matches(props, fold)
}

func (n *notNode) describe() string { return "(!" + n.child.describe() + ")" }

func describeComposite(op string, children []node) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(op)
	for _, c := range children {
		b.WriteString(c.describe())
	}
	b.WriteByte(')')
	return b.String()
}

type compareOp int

const (
	opEqual compareOp = iota + 1
	opApprox
	opGreaterEq
	opLessEq
	opPresent
	opSubstring
)

type itemNode struct {
	attr     string // attribute name as written
	attrFold string // lower-cased attribute name
	op       compareOp
	value    string   // literal for comparisons
	parts    []string // substring segments; empty strings at ends mean open
}

func (n *itemNode) matches(props map[string]any, fold bool) bool {
	key := n.attr
	if fold {
		key = n.attrFold
	}
	v, ok := props[key]
	if !ok {
		return false
	}
	if n.op == opPresent {
		return true
	}
	return matchValue(v, n)
}

func (n *itemNode) describe() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(n.attr)
	switch n.op {
	case opEqual:
		b.WriteByte('=')
		b.WriteString(escapeValue(n.value))
	case opApprox:
		b.WriteString("~=")
		b.WriteString(escapeValue(n.value))
	case opGreaterEq:
		b.WriteString(">=")
		b.WriteString(escapeValue(n.value))
	case opLessEq:
		b.WriteString("<=")
		b.WriteString(escapeValue(n.value))
	case opPresent:
		b.WriteString("=*")
	case opSubstring:
		b.WriteByte('=')
		for i, p := range n.parts {
			if i > 0 {
				b.WriteByte('*')
			}
			b.WriteString(escapeValue(p))
		}
	}
	b.WriteByte(')')
	return b.String()
}

func escapeValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '(', ')', '*', '\\':
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// matchValue applies the item comparison to a single property value,
// recursing into slices.
func matchValue(v any, n *itemNode) bool {
	switch vv := v.(type) {
	case []string:
		for _, e := range vv {
			if matchValue(e, n) {
				return true
			}
		}
		return false
	case []any:
		for _, e := range vv {
			if matchValue(e, n) {
				return true
			}
		}
		return false
	}
	switch n.op {
	case opSubstring:
		s, ok := stringOf(v)
		return ok && matchSubstring(s, n.parts)
	case opApprox:
		s, ok := stringOf(v)
		return ok && approxEqual(s, n.value)
	case opEqual, opGreaterEq, opLessEq:
		return compare(v, n.value, n.op)
	default:
		return false
	}
}

func stringOf(v any) (string, bool) {
	switch vv := v.(type) {
	case string:
		return vv, true
	case fmt.Stringer:
		return vv.String(), true
	case bool:
		return strconv.FormatBool(vv), true
	case int:
		return strconv.Itoa(vv), true
	case int32:
		return strconv.FormatInt(int64(vv), 10), true
	case int64:
		return strconv.FormatInt(vv, 10), true
	case uint16:
		return strconv.FormatUint(uint64(vv), 10), true
	case uint32:
		return strconv.FormatUint(uint64(vv), 10), true
	case uint64:
		return strconv.FormatUint(vv, 10), true
	case float32:
		return strconv.FormatFloat(float64(vv), 'g', -1, 32), true
	case float64:
		return strconv.FormatFloat(vv, 'g', -1, 64), true
	default:
		return "", false
	}
}

func compare(v any, lit string, op compareOp) bool {
	switch vv := v.(type) {
	case bool:
		b, err := strconv.ParseBool(lit)
		if err != nil {
			return false
		}
		if op == opEqual {
			return vv == b
		}
		return false
	case int, int32, int64, uint16, uint32, uint64:
		iv := toInt64(vv)
		lv, err := strconv.ParseInt(strings.TrimSpace(lit), 10, 64)
		if err != nil {
			return false
		}
		return cmpOrdered(iv, lv, op)
	case float32:
		return compareFloat(float64(vv), lit, op)
	case float64:
		return compareFloat(vv, lit, op)
	default:
		s, ok := stringOf(v)
		if !ok {
			return false
		}
		return cmpOrdered(s, lit, op)
	}
}

func compareFloat(fv float64, lit string, op compareOp) bool {
	lv, err := strconv.ParseFloat(strings.TrimSpace(lit), 64)
	if err != nil {
		return false
	}
	return cmpOrdered(fv, lv, op)
}

func toInt64(v any) int64 {
	switch vv := v.(type) {
	case int:
		return int64(vv)
	case int32:
		return int64(vv)
	case int64:
		return vv
	case uint16:
		return int64(vv)
	case uint32:
		return int64(vv)
	case uint64:
		return int64(vv)
	}
	return 0
}

func cmpOrdered[T int64 | float64 | string](a, b T, op compareOp) bool {
	switch op {
	case opEqual:
		return a == b
	case opGreaterEq:
		return a >= b
	case opLessEq:
		return a <= b
	}
	return false
}

// approxEqual implements ~=: case-insensitive comparison ignoring all
// whitespace, the common OSGi framework behaviour.
func approxEqual(a, b string) bool {
	return foldStrip(a) == foldStrip(b)
}

func foldStrip(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			continue
		}
		b.WriteRune(lowerRune(r))
	}
	return b.String()
}

func lowerRune(r rune) rune {
	if 'A' <= r && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

// matchSubstring checks s against parts, where parts[0] anchors the prefix
// and parts[len-1] anchors the suffix (empty segments mean unanchored).
func matchSubstring(s string, parts []string) bool {
	if len(parts) == 0 {
		return s == ""
	}
	first, last := parts[0], parts[len(parts)-1]
	if !strings.HasPrefix(s, first) {
		return false
	}
	s = s[len(first):]
	middle := parts[1 : len(parts)-1]
	if len(parts) == 1 {
		return s == ""
	}
	for _, m := range middle {
		idx := strings.Index(s, m)
		if idx < 0 {
			return false
		}
		s = s[idx+len(m):]
	}
	return strings.HasSuffix(s, last)
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Filter: p.input, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) parseFilter() (node, error) {
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	n, err := p.parseComp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != ')' {
		return nil, p.errf("expected ')'")
	}
	p.pos++
	return n, nil
}

func (p *parser) parseComp() (node, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, p.errf("unexpected end of filter")
	}
	switch p.input[p.pos] {
	case '&':
		p.pos++
		children, err := p.parseList()
		if err != nil {
			return nil, err
		}
		return &andNode{children: children}, nil
	case '|':
		p.pos++
		children, err := p.parseList()
		if err != nil {
			return nil, err
		}
		return &orNode{children: children}, nil
	case '!':
		p.pos++
		child, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		return &notNode{child: child}, nil
	default:
		return p.parseItem()
	}
}

func (p *parser) parseList() ([]node, error) {
	var children []node
	for {
		p.skipSpace()
		if p.pos >= len(p.input) {
			return nil, p.errf("unterminated composite")
		}
		if p.input[p.pos] == ')' {
			if len(children) == 0 {
				return nil, p.errf("empty composite filter")
			}
			return children, nil
		}
		child, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
	}
}

func (p *parser) parseItem() (node, error) {
	attr, err := p.parseAttr()
	if err != nil {
		return nil, err
	}
	if p.pos >= len(p.input) {
		return nil, p.errf("missing operator")
	}
	var op compareOp
	switch p.input[p.pos] {
	case '=':
		op = opEqual
		p.pos++
	case '~':
		op = opApprox
		p.pos++
		if p.pos >= len(p.input) || p.input[p.pos] != '=' {
			return nil, p.errf("expected '=' after '~'")
		}
		p.pos++
	case '>':
		op = opGreaterEq
		p.pos++
		if p.pos >= len(p.input) || p.input[p.pos] != '=' {
			return nil, p.errf("expected '=' after '>'")
		}
		p.pos++
	case '<':
		op = opLessEq
		p.pos++
		if p.pos >= len(p.input) || p.input[p.pos] != '=' {
			return nil, p.errf("expected '=' after '<'")
		}
		p.pos++
	default:
		return nil, p.errf("invalid operator %q", p.input[p.pos])
	}
	segments, hasStar, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	item := &itemNode{attr: attr, attrFold: strings.ToLower(attr), op: op}
	switch {
	case op == opEqual && hasStar && len(segments) == 2 && segments[0] == "" && segments[1] == "":
		item.op = opPresent
	case op == opEqual && hasStar:
		item.op = opSubstring
		item.parts = segments
	case hasStar:
		return nil, p.errf("wildcard only allowed with '='")
	default:
		item.value = segments[0]
	}
	return item, nil
}

func (p *parser) parseAttr() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == '=' || c == '~' || c == '>' || c == '<' || c == '(' || c == ')' {
			break
		}
		p.pos++
	}
	attr := strings.TrimSpace(p.input[start:p.pos])
	if attr == "" {
		return "", p.errf("empty attribute name")
	}
	if strings.ContainsAny(attr, "*\\") {
		return "", p.errf("attribute name %q contains invalid characters", attr)
	}
	return attr, nil
}

// parseValue reads the value of an item up to the closing ')', handling
// backslash escapes and '*' separators. It returns the literal segments
// between stars and whether any unescaped star was present.
func (p *parser) parseValue() (segments []string, hasStar bool, err error) {
	var cur strings.Builder
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch c {
		case ')':
			segments = append(segments, cur.String())
			if !hasStar && segments[0] == "" {
				// Empty value is legal in LDAP ("(a=)") and matches the
				// empty string.
				return segments, false, nil
			}
			return segments, hasStar, nil
		case '(':
			return nil, false, p.errf("unescaped '(' in value")
		case '*':
			hasStar = true
			segments = append(segments, cur.String())
			cur.Reset()
			p.pos++
		case '\\':
			if p.pos+1 >= len(p.input) {
				return nil, false, p.errf("dangling escape")
			}
			p.pos++
			cur.WriteByte(p.input[p.pos])
			p.pos++
		default:
			cur.WriteByte(c)
			p.pos++
		}
	}
	return nil, false, p.errf("unterminated value")
}
