package filter

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatches(t *testing.T) {
	props := map[string]any{
		"objectClass": "http.Service",
		"port":        8080,
		"secure":      false,
		"version":     "1.4.2",
		"weight":      2.5,
		"aliases":     []string{"web", "www"},
		"empty":       "",
	}
	tests := []struct {
		name   string
		filter string
		want   bool
	}{
		{"equal string", "(objectClass=http.Service)", true},
		{"equal string miss", "(objectClass=log.Service)", false},
		{"attr case insensitive", "(OBJECTCLASS=http.Service)", true},
		{"value case sensitive", "(objectClass=HTTP.SERVICE)", false},
		{"int equal", "(port=8080)", true},
		{"int ge", "(port>=80)", true},
		{"int ge miss", "(port>=9000)", false},
		{"int le", "(port<=8080)", true},
		{"int le miss", "(port<=79)", false},
		{"bool equal", "(secure=false)", true},
		{"bool miss", "(secure=true)", false},
		{"float ge", "(weight>=2.0)", true},
		{"float le miss", "(weight<=2.0)", false},
		{"present", "(version=*)", true},
		{"present miss", "(nothere=*)", false},
		{"and", "(&(objectClass=http.Service)(port>=80))", true},
		{"and miss", "(&(objectClass=http.Service)(port>=9000))", false},
		{"or", "(|(port=1)(port=8080))", true},
		{"or miss", "(|(port=1)(port=2))", false},
		{"not", "(!(secure=true))", true},
		{"not miss", "(!(port=8080))", false},
		{"nested", "(&(|(objectClass=a)(objectClass=http.Service))(!(secure=true)))", true},
		{"substring prefix", "(objectClass=http*)", true},
		{"substring suffix", "(objectClass=*Service)", true},
		{"substring middle", "(objectClass=*ttp.Ser*)", true},
		{"substring multi", "(version=1*4*2)", true},
		{"substring miss", "(objectClass=ftp*)", false},
		{"multivalue hit", "(aliases=www)", true},
		{"multivalue substring", "(aliases=we*)", true},
		{"multivalue miss", "(aliases=mail)", false},
		{"empty value", "(empty=)", true},
		{"empty value miss", "(version=)", false},
		{"approx", "(objectClass~=HTTP. SERVICE)", true},
		{"approx miss", "(objectClass~=http.Services)", false},
		{"numeric as string prop", "(version>=1.4)", true},
		{"spaces around attr", "( port >=80)", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, err := Parse(tt.filter)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.filter, err)
			}
			if got := f.Matches(props); got != tt.want {
				t.Errorf("Matches(%q) = %v, want %v", tt.filter, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		")",
		"(a=b",
		"a=b",
		"(=b)",
		"(a>b)",
		"(a<b)",
		"(a~b)",
		"(&)",
		"(|)",
		"(!)",
		"(!(a=b)",
		"(a=b)(c=d)",
		"(a=b\\)",
		"(a(=b)",
		"(a*x=b)",
		"(a>=*)",
		"(a<=x*y)",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestEscapes(t *testing.T) {
	props := map[string]any{
		"path": "a(b)c*d\\e",
		"star": "*",
	}
	f, err := Parse(`(path=a\(b\)c\*d\\e)`)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(props) {
		t.Error("escaped literal did not match")
	}
	f = MustParse(`(star=\*)`)
	if !f.Matches(props) {
		t.Error("escaped star did not match literal star")
	}
	if MustParse(`(star=x)`).Matches(props) {
		t.Error("wrong literal matched")
	}
}

func TestMissingAttributeNeverMatches(t *testing.T) {
	f := MustParse("(!(missing=x))")
	// OSGi semantics: (!(missing=x)) matches when 'missing' is absent,
	// because the inner item evaluates to false.
	if !f.Matches(map[string]any{}) {
		t.Error("negated item over missing attribute should match")
	}
	for _, s := range []string{"(missing=x)", "(missing>=1)", "(missing=*)", "(missing=a*b)"} {
		if MustParse(s).Matches(map[string]any{"other": 1}) {
			t.Errorf("%s matched with attribute missing", s)
		}
	}
}

func TestStringCanonicalRoundTrip(t *testing.T) {
	inputs := []string{
		"(a=b)",
		"(&(a=b)(c>=1))",
		"(|(a=b)(!(c<=2)))",
		"(a=*)",
		"(a=x*y*z)",
		`(a=l\(i\)t)`,
		"(a~=b c)",
	}
	for _, s := range inputs {
		f := MustParse(s)
		canon := f.String()
		f2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse of String(%q)=%q failed: %v", s, canon, err)
		}
		if f2.String() != canon {
			t.Errorf("String not canonical: %q -> %q", canon, f2.String())
		}
	}
}

// Property: any filter built from random equality items parses, and its
// String() form reparses to an identical canonical form.
func TestParsePrintRoundTripProperty(t *testing.T) {
	clean := func(s string, max int) string {
		var b strings.Builder
		for _, r := range s {
			if r > 0x20 && r < 0x7f && !strings.ContainsRune("()*\\=<>~", r) {
				b.WriteRune(r)
			}
			if b.Len() >= max {
				break
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	prop := func(attr, val string, ge bool) bool {
		a, v := clean(attr, 12), clean(val, 20)
		op := "="
		if ge {
			op = ">="
		}
		src := "(" + a + op + v + ")"
		f, err := Parse(src)
		if err != nil {
			return false
		}
		f2, err := Parse(f.String())
		if err != nil {
			return false
		}
		return f2.String() == f.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNilFilterMatchesEverything(t *testing.T) {
	var f *Filter
	if !f.Matches(map[string]any{"a": 1}) {
		t.Error("nil filter must match everything")
	}
	if f.String() != "" {
		t.Error("nil filter String should be empty")
	}
}

func TestMatchesCase(t *testing.T) {
	f := MustParse("(Name=x)")
	if !f.Matches(map[string]any{"name": "x"}) {
		t.Error("Matches should fold key case")
	}
	if f.MatchesCase(map[string]any{"name": "x"}) {
		t.Error("MatchesCase should not fold key case")
	}
	if !f.MatchesCase(map[string]any{"Name": "x"}) {
		t.Error("MatchesCase exact key failed")
	}
}

func TestSubstringEdge(t *testing.T) {
	tests := []struct {
		filter string
		value  string
		want   bool
	}{
		{"(a=x*)", "x", true},
		{"(a=x*)", "xy", true},
		{"(a=*x)", "x", true},
		{"(a=*x)", "yx", true},
		{"(a=x*x)", "xx", true},
		{"(a=x*x)", "x", false},
		{"(a=**)", "anything", true},
		{"(a=*a*a*)", "aa", true},
		{"(a=*a*a*)", "ab", false},
	}
	for _, tt := range tests {
		f := MustParse(tt.filter)
		got := f.Matches(map[string]any{"a": tt.value})
		if got != tt.want {
			t.Errorf("%s on %q = %v, want %v", tt.filter, tt.value, got, tt.want)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("(&(objectClass=http.Service)(port>=80)(!(internal=true)))"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	f := MustParse("(&(objectClass=http.Service)(port>=80)(!(internal=true)))")
	props := map[string]any{"objectClass": "http.Service", "port": 8080, "internal": false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.MatchesCase(props) {
			b.Fatal("no match")
		}
	}
}
