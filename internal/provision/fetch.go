package provision

import (
	"fmt"
	"sync"
	"time"

	"dosgi/internal/obs"
	"dosgi/internal/remote"
	"dosgi/internal/services"
)

// ReplicaResolver maps an artifact digest to the remote endpoints of live
// nodes advertising a copy. The cluster implements it over the replicated
// migrate directory; daemons resolve their configured peers.
type ReplicaResolver interface {
	Replicas(digest string) []remote.Endpoint
}

// StaticReplicas resolves every digest to a fixed endpoint list.
type StaticReplicas struct {
	Eps []remote.Endpoint
}

// Replicas implements ReplicaResolver.
func (r StaticReplicas) Replicas(string) []remote.Endpoint {
	return append([]remote.Endpoint(nil), r.Eps...)
}

// DefaultFetchWindow is how many chunk requests a fetch keeps in flight
// on one replica's pipelined connection.
const DefaultFetchWindow = 4

// FetcherOption configures a Fetcher.
type FetcherOption func(*Fetcher)

// WithFetchWindow sets the in-flight chunk request window.
func WithFetchWindow(n int) FetcherOption {
	return func(f *Fetcher) {
		if n > 0 {
			f.window = n
		}
	}
}

// WithCounters wires the provisioning counters.
func WithCounters(c *services.ProvisionCounters) FetcherOption {
	return func(f *Fetcher) { f.counters = c }
}

// WithFetchObserver records each successful chunk fetch's issue→response
// round trip into h; now supplies timestamps.
func WithFetchObserver(now func() time.Duration, h *obs.Histogram) FetcherOption {
	return func(f *Fetcher) {
		if now != nil && h != nil {
			f.now, f.chunkHist = now, h
		}
	}
}

// Fetcher streams artifact payloads chunk-by-chunk from repository
// replicas over the shared remote connection pool. Like the Invoker it
// fails over on any per-replica error — but mid-transfer: chunks already
// received survive the switch and only the missing ones are requested
// from the next replica. An assembled payload whose digest does not match
// the metadata (a corrupted replica) is discarded wholesale and refetched
// from the next replica.
type Fetcher struct {
	pool      *remote.Pool
	resolver  ReplicaResolver
	counters  *services.ProvisionCounters
	window    int
	now       func() time.Duration
	chunkHist *obs.Histogram
}

// NewFetcher builds a fetcher calling through pool.
func NewFetcher(pool *remote.Pool, resolver ReplicaResolver, opts ...FetcherOption) *Fetcher {
	f := &Fetcher{pool: pool, resolver: resolver, window: DefaultFetchWindow}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Fetch retrieves the payload of art asynchronously; cb fires exactly
// once with the digest-verified payload or the final post-failover error.
// Safe to call from simulation callbacks.
func (f *Fetcher) Fetch(art Artifact, cb func([]byte, error)) {
	replicas := f.resolver.Replicas(art.Digest)
	if len(replicas) == 0 {
		cb(nil, fmt.Errorf("%w: %s (%s)", ErrNoReplica, art.Location, short(art.Digest)))
		return
	}
	if art.Chunks == 0 {
		// An empty artifact has nothing to transfer; only its digest
		// needs to check out.
		if PayloadDigest(nil) != art.Digest {
			cb(nil, fmt.Errorf("%w: %s: empty payload digest mismatch", ErrVerification, art.Location))
			return
		}
		if f.counters != nil {
			f.counters.ArtifactsFetched.Add(1)
		}
		cb([]byte{}, nil)
		return
	}
	st := &fetchState{
		f:        f,
		art:      art,
		cb:       cb,
		replicas: replicas,
		chunks:   make([][]byte, art.Chunks),
	}
	st.mu.Lock()
	st.launchLocked()
}

// fetchState is one in-progress fetch. launchLocked and the helpers it
// hands off to are entered with st.mu held and release it themselves so
// pool callbacks (which may run synchronously on netsim) never re-enter
// the lock.
type fetchState struct {
	f   *Fetcher
	art Artifact
	cb  func([]byte, error)

	mu       sync.Mutex
	replicas []remote.Endpoint
	ri       int // replica being read
	gen      int // attempt generation; callbacks from older attempts are stale
	chunks   [][]byte
	got      int64
	cursor   int64 // scan position for the next missing chunk
	inflight int
	done     bool
}

// launchLocked fills the request window against the current replica and
// releases the lock.
func (st *fetchState) launchLocked() {
	type launch struct {
		idx int64
		gen int
	}
	var launches []launch
	for st.inflight < st.f.window {
		idx, ok := st.nextMissingLocked()
		if !ok {
			break
		}
		st.inflight++
		launches = append(launches, launch{idx: idx, gen: st.gen})
	}
	addr := st.replicas[st.ri].Addr
	st.mu.Unlock()
	for _, l := range launches {
		l := l
		var issuedAt time.Duration
		if st.f.chunkHist != nil {
			issuedAt = st.f.now()
		}
		req := &remote.Request{Service: ServiceName, Method: "Chunk", Args: []any{st.art.Digest, l.idx}}
		err := st.f.pool.Invoke(addr, req, func(resp *remote.Response, err error) {
			st.onChunk(l.gen, l.idx, issuedAt, resp, err)
		})
		if err != nil {
			st.onChunk(l.gen, l.idx, issuedAt, nil, err)
		}
	}
}

func (st *fetchState) nextMissingLocked() (int64, bool) {
	for ; st.cursor < st.art.Chunks; st.cursor++ {
		if st.chunks[st.cursor] == nil {
			idx := st.cursor
			st.cursor++
			return idx, true
		}
	}
	return 0, false
}

func (st *fetchState) onChunk(gen int, idx int64, issuedAt time.Duration, resp *remote.Response, err error) {
	if st.f.chunkHist != nil && err == nil && resp != nil && resp.Status == remote.StatusOK {
		st.f.chunkHist.Record(st.f.now() - issuedAt)
	}
	st.mu.Lock()
	if st.done || gen != st.gen {
		st.mu.Unlock()
		return
	}
	st.inflight--
	switch {
	case err != nil:
		st.failoverLocked(fmt.Errorf("provision: fetching %s from %s: %w",
			st.art.Location, st.replicas[st.ri].Addr, err))
		return
	case resp.Status != remote.StatusOK:
		st.failoverLocked(fmt.Errorf("provision: fetching %s from %s: %s",
			st.art.Location, st.replicas[st.ri].Addr, resp.Err))
		return
	}
	chunk, ok := firstBytes(resp.Results)
	if !ok {
		st.failoverLocked(fmt.Errorf("provision: fetching %s from %s: malformed chunk response",
			st.art.Location, st.replicas[st.ri].Addr))
		return
	}
	if st.chunks[idx] == nil {
		st.chunks[idx] = chunk
		st.got++
		if st.f.counters != nil {
			st.f.counters.BytesTransferred.Add(int64(len(chunk)))
		}
	}
	if st.got == st.art.Chunks {
		st.assembleLocked()
		return
	}
	st.launchLocked()
}

// assembleLocked joins the chunks and verifies the content digest; a
// mismatch (a corrupted replica) discards everything and retries from the
// next replica.
func (st *fetchState) assembleLocked() {
	payload := make([]byte, 0, st.art.Size)
	for _, c := range st.chunks {
		payload = append(payload, c...)
	}
	if PayloadDigest(payload) != st.art.Digest {
		if st.f.counters != nil {
			st.f.counters.VerificationRejections.Add(1)
		}
		st.chunks = make([][]byte, st.art.Chunks)
		st.got = 0
		st.failoverLocked(fmt.Errorf("%w: %s: corrupt payload from %s",
			ErrVerification, st.art.Location, st.replicas[st.ri].Addr))
		return
	}
	st.done = true
	st.mu.Unlock()
	if st.f.counters != nil {
		st.f.counters.ArtifactsFetched.Add(1)
	}
	st.cb(payload, nil)
}

// failoverLocked moves to the next replica (bumping the generation so
// outstanding callbacks from the failed one are ignored) or fails the
// fetch when none remain. Fetched chunks are kept unless the caller
// discarded them — mid-transfer failover resumes where it left off.
func (st *fetchState) failoverLocked(cause error) {
	st.gen++
	st.inflight = 0
	st.cursor = 0
	st.ri++
	if st.ri >= len(st.replicas) {
		st.done = true
		st.mu.Unlock()
		st.cb(nil, cause)
		return
	}
	if st.f.counters != nil {
		st.f.counters.FetchRetries.Add(1)
	}
	st.launchLocked()
}

func firstBytes(results []any) ([]byte, bool) {
	if len(results) == 0 {
		return nil, false
	}
	b, ok := results[0].([]byte)
	return b, ok
}
