package provision

import (
	"fmt"
	"sort"
	"sync"

	"dosgi/internal/manifest"
)

// Store is one node's content-addressed artifact store: payloads keyed by
// their SHA-256 digest, split into fixed-size chunks so fetchers can
// address pieces of them. All methods are safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	meta       map[string]Artifact // digest → metadata (Node empty)
	chunks     map[string][][]byte // digest → payload chunks
	byLocation map[string]string   // location → digest
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		meta:       make(map[string]Artifact),
		chunks:     make(map[string][][]byte),
		byLocation: make(map[string]string),
	}
}

// Add stores an artifact payload under its metadata. The payload must
// match the metadata's digest and size — Add is the last line of defense
// against caching bytes that would fail verification on every future read.
func (s *Store) Add(art Artifact, payload []byte) error {
	if got := PayloadDigest(payload); got != art.Digest {
		return fmt.Errorf("%w: digest mismatch storing %s (payload %s, metadata %s)",
			ErrVerification, art.Location, got[:12], art.Digest[:12])
	}
	if int64(len(payload)) != art.Size {
		return fmt.Errorf("%w: size mismatch storing %s (%d bytes, metadata %d)",
			ErrVerification, art.Location, len(payload), art.Size)
	}
	if art.ChunkSize <= 0 {
		return fmt.Errorf("provision: artifact %s has no chunk size", art.Location)
	}
	art.Node = ""
	split := make([][]byte, 0, art.Chunks)
	for off := int64(0); off < int64(len(payload)); off += art.ChunkSize {
		end := off + art.ChunkSize
		if end > int64(len(payload)) {
			end = int64(len(payload))
		}
		chunk := make([]byte, end-off)
		copy(chunk, payload[off:end])
		split = append(split, chunk)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta[art.Digest] = art
	s.chunks[art.Digest] = split
	s.byLocation[art.Location] = art.Digest
	return nil
}

// Remove drops an artifact from the store.
func (s *Store) Remove(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if art, ok := s.meta[digest]; ok && s.byLocation[art.Location] == digest {
		delete(s.byLocation, art.Location)
	}
	delete(s.meta, digest)
	delete(s.chunks, digest)
}

// Has reports whether the store holds digest.
func (s *Store) Has(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.meta[digest]
	return ok
}

// Describe returns the metadata of digest.
func (s *Store) Describe(digest string) (Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	art, ok := s.meta[digest]
	return art, ok
}

// ArtifactAt returns the metadata of the artifact installed at location.
func (s *Store) ArtifactAt(location string) (Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	digest, ok := s.byLocation[location]
	if !ok {
		return Artifact{}, false
	}
	art, ok := s.meta[digest]
	return art, ok
}

// FindBundle returns the highest-version stored artifact whose bundle
// coordinates satisfy (symbolicName, rng).
func (s *Store) FindBundle(symbolicName string, rng manifest.VersionRange) (Artifact, bool) {
	return FindBest(s.List(), symbolicName, rng)
}

// Chunk returns chunk index of digest.
func (s *Store) Chunk(digest string, index int64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.chunks[digest]
	if !ok || index < 0 || index >= int64(len(chunks)) {
		return nil, false
	}
	out := make([]byte, len(chunks[index]))
	copy(out, chunks[index])
	return out, true
}

// Payload reassembles the full payload of digest.
func (s *Store) Payload(digest string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.chunks[digest]
	if !ok {
		return nil, false
	}
	var n int
	for _, c := range chunks {
		n += len(c)
	}
	out := make([]byte, 0, n)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, true
}

// List returns stored artifact metadata sorted by location then digest.
func (s *Store) List() []Artifact {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Artifact, 0, len(s.meta))
	for _, art := range s.meta {
		out = append(out, art)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Location != out[j].Location {
			return out[i].Location < out[j].Location
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// CorruptChunk flips a byte of one stored chunk — fault injection for
// dependability tests: a fetcher reading from this store assembles a
// payload whose digest no longer matches, which the verifier must reject
// and retry from another replica.
func (s *Store) CorruptChunk(digest string, index int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunks, ok := s.chunks[digest]
	if !ok || index < 0 || index >= int64(len(chunks)) || len(chunks[index]) == 0 {
		return false
	}
	chunks[index][0] ^= 0xff
	return true
}
