// Package provision is the cluster-wide bundle provisioning subsystem: a
// decentralized, replicated artifact repository with verified on-demand
// fetch, replacing the assumption that every node was pre-seeded with
// every bundle. It closes the dependability loop of the paper: a virtual
// instance redeployed after a crash can land on *any* surviving node,
// because the node fetches the bundles it is missing before the restore.
//
// The four parts, bottom up:
//
//	Store     content-addressed artifact blobs (SHA-256 digests, chunked)
//	Fetcher   streams missing artifacts chunk-by-chunk over the remote
//	          transport/pool, failing over to another replica mid-transfer
//	Verifier  digest + signature + policy gate (internal/security) an
//	          artifact must pass before it may be installed
//	Deployer  resolves the artifact's manifest dependencies against the
//	          repository index, registers the definition and installs and
//	          starts the bundle in the target framework
//
// Holdings are advertised through the replicated migrate directory
// (total-order broadcast, anti-entropy resync on view change), so every
// node resolves fetch replicas from its local directory copy.
//
// On the wire, fetches are ordinary remote invocations on the reserved
// service name "dosgi.provision" (verbs Describe / DescribeDigest / Find
// / Chunk / Locations — see docs/PROTOCOL.md §6.1), so they share
// connections, pooling and failover with application calls: a replica
// answering an application error is simply skipped, and a transfer
// resumes on the next replica with only its missing chunks.
//
// Go cannot load code dynamically, so an artifact payload carries the
// bundle's *content* — manifest text, named class entries with literal
// payloads, data files — while activator code is resolved at install time
// through a process-wide activator factory registry (the analog of the
// JVM having the code for a class once its bytes arrive).
package provision

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dosgi/internal/manifest"
	"dosgi/internal/migrate"
	"dosgi/internal/module"
)

// Artifact is the metadata of one provisioned bundle artifact. It is the
// same record the replicated directory carries (Node names a holder there
// and stays empty in store/metadata contexts).
type Artifact = migrate.ArtifactInfo

// ServiceName is the reserved exported-service name every repository node
// serves its artifacts under; fetchers invoke it through the standard
// remote stack.
const ServiceName = "dosgi.provision"

// ServiceClass is the objectClass the repository service registers under.
const ServiceClass = "dosgi.provision.Repository"

// DefaultChunkSize is the fetch granularity when the publisher does not
// choose one (64 KiB keeps frames far below remote.MaxFrameSize while
// amortizing per-chunk round trips).
const DefaultChunkSize = 64 << 10

// Provisioning errors.
var (
	// ErrUnknownArtifact means neither the local store nor the repository
	// index knows the artifact.
	ErrUnknownArtifact = errors.New("provision: unknown artifact")
	// ErrNoReplica means the index knows the artifact but no live node
	// advertises a copy.
	ErrNoReplica = errors.New("provision: no replica holds artifact")
	// ErrVerification is the root of all verifier rejections.
	ErrVerification = errors.New("provision: verification failed")
)

// BundleImage is the installable content an artifact payload carries: the
// serializable subset of module.Definition. Classes values are literal
// payloads (strings); the activator named by the manifest is resolved
// through the activator factory registry at install time.
type BundleImage struct {
	ManifestText string            `json:"manifestText"`
	Classes      map[string]string `json:"classes,omitempty"`
	DataFiles    map[string][]byte `json:"dataFiles,omitempty"`
}

// Encode serializes the image deterministically (canonical JSON) so equal
// images always produce equal digests.
func (img *BundleImage) Encode() ([]byte, error) {
	return json.Marshal(img)
}

// DecodeImage parses an artifact payload.
func DecodeImage(payload []byte) (*BundleImage, error) {
	var img BundleImage
	if err := json.Unmarshal(payload, &img); err != nil {
		return nil, fmt.Errorf("provision: decoding image: %w", err)
	}
	return &img, nil
}

// PayloadDigest returns the hex SHA-256 content address of a payload.
func PayloadDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// NewArtifact builds the signed artifact metadata and payload for an
// image: it validates the manifest, encodes the payload, computes the
// content digest and chunk geometry, and signs (signer, digest) with key.
// chunkSize ≤ 0 selects DefaultChunkSize.
func NewArtifact(location string, img *BundleImage, signer string, key []byte, chunkSize int64) (Artifact, []byte, error) {
	m, err := manifest.Parse(img.ManifestText)
	if err != nil {
		return Artifact{}, nil, err
	}
	payload, err := img.Encode()
	if err != nil {
		return Artifact{}, nil, err
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	digest := PayloadDigest(payload)
	art := Artifact{
		Digest:       digest,
		Location:     location,
		SymbolicName: m.SymbolicName,
		Version:      m.Version.String(),
		Size:         int64(len(payload)),
		ChunkSize:    chunkSize,
		Chunks:       chunkCount(int64(len(payload)), chunkSize),
		Signer:       signer,
		Signature:    Sign(key, signer, digest),
	}
	return art, payload, nil
}

func chunkCount(size, chunkSize int64) int64 {
	if size == 0 {
		return 0
	}
	return (size + chunkSize - 1) / chunkSize
}

// FindBest returns the highest-version artifact among arts whose bundle
// coordinates satisfy (symbolicName, rng); version ties break on the
// lower digest so every caller resolves the same record. Records with an
// unparseable version are skipped.
func FindBest(arts []Artifact, symbolicName string, rng manifest.VersionRange) (Artifact, bool) {
	var best Artifact
	var bestV manifest.Version
	found := false
	for _, art := range arts {
		if art.SymbolicName != symbolicName {
			continue
		}
		v, err := manifest.ParseVersion(art.Version)
		if err != nil || !rng.Includes(v) {
			continue
		}
		c := 1
		if found {
			c = v.Compare(bestV)
		}
		if c > 0 || (c == 0 && art.Digest < best.Digest) {
			best, bestV, found = art, v, true
		}
	}
	return best, found
}

// activator factory registry: maps Bundle-Activator class names to Go
// constructors. Registration is process-wide — the reconstruction of "the
// code is installed everywhere, the bytes gate activation".
var (
	activatorMu        sync.Mutex
	activatorFactories = make(map[string]func() module.Activator)
)

// RegisterActivator registers the constructor for an activator class
// name, replacing any previous registration.
func RegisterActivator(name string, fn func() module.Activator) {
	activatorMu.Lock()
	defer activatorMu.Unlock()
	activatorFactories[name] = fn
}

// ActivatorFactory resolves a registered activator constructor.
func ActivatorFactory(name string) (func() module.Activator, bool) {
	activatorMu.Lock()
	defer activatorMu.Unlock()
	fn, ok := activatorFactories[name]
	return fn, ok
}

// RegisteredActivators lists registered activator class names, sorted.
func RegisteredActivators() []string {
	activatorMu.Lock()
	defer activatorMu.Unlock()
	out := make([]string, 0, len(activatorFactories))
	for name := range activatorFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
