package provision

import (
	"errors"
	"fmt"
	"sync"

	"dosgi/internal/manifest"
	"dosgi/internal/module"
	"dosgi/internal/services"
)

// Index resolves artifact metadata cluster-wide: by install location and
// by bundle coordinates (for dependency resolution). The cluster
// implements it over the replicated migrate directory; daemons consult
// their local store and then their peers.
type Index interface {
	ArtifactAt(location string) (Artifact, bool)
	FindBundle(symbolicName string, rng manifest.VersionRange) (Artifact, bool)
}

// DeployerConfig wires a Deployer into its node.
type DeployerConfig struct {
	Store    *Store
	Fetcher  *Fetcher
	Verifier *Verifier
	Index    Index
	// Definitions is the node-local registry definitions land in.
	Definitions *module.DefinitionRegistry
	// Framework is where Deploy installs bundles (the node's host
	// framework; instance restores install from Definitions themselves).
	Framework *module.Framework
	Counters  *services.ProvisionCounters
	// OnStored fires after a fetched artifact passed verification and
	// entered the local store — the cluster announces the new holding
	// here so on-demand caching strengthens the repository.
	OnStored func(Artifact)
	// Async, when set, runs fetch continuations (verify, register, the
	// dependency walk) instead of the transport callback goroutine.
	// Real-time embedders pass a goroutine-spawning executor so a
	// blocking Index lookup inside a continuation cannot deadlock the
	// transport reader that delivered the fetch; the deterministic
	// simulator leaves it nil (inline).
	Async func(func())
}

// Deployer turns repository artifacts into installed, started bundles:
// fetch (if missing locally), verify, register the definition, resolve
// Require-Bundle dependencies against the repository index and the module
// resolver, install and start.
type Deployer struct {
	cfg DeployerConfig

	mu sync.Mutex
	// pending coalesces concurrent ensures of the same location and
	// transfers coalesces concurrent fetches of the same digest (a
	// failover restore racing a replication-repair fetch) onto one fetch.
	pending   map[string][]func(error)
	transfers map[string][]func(error)
}

// NewDeployer builds a deployer.
func NewDeployer(cfg DeployerConfig) (*Deployer, error) {
	if cfg.Store == nil || cfg.Fetcher == nil || cfg.Verifier == nil ||
		cfg.Index == nil || cfg.Definitions == nil || cfg.Framework == nil {
		return nil, errors.New("provision: incomplete deployer config")
	}
	return &Deployer{
		cfg:       cfg,
		pending:   make(map[string][]func(error)),
		transfers: make(map[string][]func(error)),
	}, nil
}

// EnsureDefinition makes the definition at location installable locally:
// a no-op when already registered, otherwise the artifact is looked up in
// the index, fetched from a replica if the local store lacks it, verified
// and registered. cb fires exactly once; concurrent ensures of the same
// location share one fetch.
func (d *Deployer) EnsureDefinition(location string, cb func(error)) {
	if _, ok := d.cfg.Definitions.Get(location); ok {
		cb(nil)
		return
	}
	d.mu.Lock()
	if cbs, inflight := d.pending[location]; inflight {
		d.pending[location] = append(cbs, cb)
		d.mu.Unlock()
		return
	}
	d.pending[location] = []func(error){cb}
	d.mu.Unlock()
	d.ensure(location, func(err error) {
		d.mu.Lock()
		cbs := d.pending[location]
		delete(d.pending, location)
		d.mu.Unlock()
		for _, fn := range cbs {
			fn(err)
		}
	})
}

// ensure performs one lookup-fetch-verify-register pass; done fires
// exactly once.
func (d *Deployer) ensure(location string, done func(error)) {
	art, ok := d.lookup(location)
	if !ok {
		done(fmt.Errorf("%w: no definition or artifact at %q", ErrUnknownArtifact, location))
		return
	}
	if payload, ok := d.cfg.Store.Payload(art.Digest); ok {
		done(d.register(art, payload, false))
		return
	}
	d.fetchIntoStore(art, func(err error) {
		if err != nil {
			done(err)
			return
		}
		payload, ok := d.cfg.Store.Payload(art.Digest)
		if !ok {
			done(fmt.Errorf("%w: %s vanished from the store", ErrUnknownArtifact, art.Location))
			return
		}
		done(d.register(art, payload, false))
	})
}

// EnsureArtifact makes the payload of art resident in the local store,
// fetching and verifying it on demand. It is keyed by content digest —
// unlike EnsureDefinition's install-location key — so replication-factor
// repair still copies every digest of a location that was republished
// under new content.
func (d *Deployer) EnsureArtifact(art Artifact, cb func(error)) {
	if d.cfg.Store.Has(art.Digest) {
		cb(nil)
		return
	}
	d.fetchIntoStore(art, cb)
}

// fetchIntoStore streams art from a replica, verifies it and stores it,
// advertising the new holding. done fires exactly once, through the
// configured executor; concurrent fetches of the same digest share one
// transfer.
func (d *Deployer) fetchIntoStore(art Artifact, done func(error)) {
	d.mu.Lock()
	if waiters, inflight := d.transfers[art.Digest]; inflight {
		d.transfers[art.Digest] = append(waiters, done)
		d.mu.Unlock()
		return
	}
	d.transfers[art.Digest] = []func(error){done}
	d.mu.Unlock()
	done = func(err error) {
		d.mu.Lock()
		waiters := d.transfers[art.Digest]
		delete(d.transfers, art.Digest)
		d.mu.Unlock()
		for _, fn := range waiters {
			fn(err)
		}
	}
	art.Node = ""
	d.cfg.Fetcher.Fetch(art, func(payload []byte, err error) {
		d.resume(func() {
			if err != nil {
				done(err)
				return
			}
			if err := d.verify(art, payload); err != nil {
				done(err)
				return
			}
			if err := d.cfg.Store.Add(art, payload); err != nil {
				done(err)
				return
			}
			if d.cfg.OnStored != nil {
				d.cfg.OnStored(art)
			}
			done(nil)
		})
	})
}

// RegisterLocal verifies and registers the definition of an artifact
// whose payload is already in the local store — the synchronous tail of
// a publish.
func (d *Deployer) RegisterLocal(art Artifact) error {
	payload, ok := d.cfg.Store.Payload(art.Digest)
	if !ok {
		return fmt.Errorf("%w: payload of %s is not stored locally", ErrUnknownArtifact, art.Location)
	}
	return d.register(art, payload, true)
}

// resume runs a fetch continuation through the configured executor.
func (d *Deployer) resume(fn func()) {
	if d.cfg.Async != nil {
		d.cfg.Async(fn)
		return
	}
	fn()
}

// lookup prefers the local store's metadata (the publisher itself) and
// falls back to the cluster index.
func (d *Deployer) lookup(location string) (Artifact, bool) {
	if art, ok := d.cfg.Store.ArtifactAt(location); ok {
		return art, true
	}
	return d.cfg.Index.ArtifactAt(location)
}

// verify gates payload through the verifier, counting rejections.
func (d *Deployer) verify(art Artifact, payload []byte) error {
	if err := d.cfg.Verifier.Verify(art, payload); err != nil {
		if d.cfg.Counters != nil {
			d.cfg.Counters.VerificationRejections.Add(1)
		}
		return err
	}
	return nil
}

// register decodes the payload into a bundle definition and adds it to
// the node-local registry. The activator named by the manifest is
// resolved through the activator factory registry. An existing
// registration wins unless replace is set (a republish replaces the
// definition like replacing a JAR).
func (d *Deployer) register(art Artifact, payload []byte, replace bool) error {
	if _, ok := d.cfg.Definitions.Get(art.Location); ok && !replace {
		return nil
	}
	if err := d.verify(art, payload); err != nil {
		return err
	}
	img, err := DecodeImage(payload)
	if err != nil {
		return err
	}
	m, err := manifest.Parse(img.ManifestText)
	if err != nil {
		return err
	}
	def := &module.Definition{
		ManifestText: img.ManifestText,
		DataFiles:    img.DataFiles,
	}
	if len(img.Classes) > 0 {
		def.Classes = make(map[string]any, len(img.Classes))
		for name, payload := range img.Classes {
			def.Classes[name] = payload
		}
	}
	if m.Activator != "" {
		factory, ok := ActivatorFactory(m.Activator)
		if !ok {
			return fmt.Errorf("provision: no activator factory registered for %q (artifact %s)",
				m.Activator, art.Location)
		}
		def.NewActivator = factory
	}
	return d.cfg.Definitions.Add(art.Location, def)
}

// EnsureClosure ensures the definition at location plus its transitive
// Require-Bundle dependencies, resolving missing ones through the
// repository index. cb receives the locations in dependency-first install
// order.
func (d *Deployer) EnsureClosure(location string, cb func([]string, error)) {
	visited := make(map[string]bool)
	var order []string

	var ensure func(loc string, done func(error))
	ensure = func(loc string, done func(error)) {
		if visited[loc] {
			done(nil)
			return
		}
		visited[loc] = true
		d.EnsureDefinition(loc, func(err error) {
			if err != nil {
				done(err)
				return
			}
			def, ok := d.cfg.Definitions.Get(loc)
			if !ok {
				done(fmt.Errorf("%w: %q vanished after ensure", ErrUnknownArtifact, loc))
				return
			}
			m, err := manifest.Parse(def.ManifestText)
			if err != nil {
				done(err)
				return
			}
			var deps []string
			for _, req := range m.Requires {
				depLoc, found, err := d.resolveRequire(req)
				if err != nil {
					done(err)
					return
				}
				if found {
					deps = append(deps, depLoc)
				}
			}
			var step func(i int)
			step = func(i int) {
				if i >= len(deps) {
					order = append(order, loc)
					done(nil)
					return
				}
				ensure(deps[i], func(err error) {
					if err != nil {
						done(err)
						return
					}
					step(i + 1)
				})
			}
			step(0)
		})
	}
	ensure(location, func(err error) { cb(order, err) })
}

// resolveRequire maps one Require-Bundle clause to the location that must
// be ensured (and later installed), or found=false when an installed
// bundle already satisfies it — the module resolver wires that case. A
// mandatory clause nothing satisfies is an error. Registered-but-not-
// installed definitions still surface their location so Deploy installs
// them.
func (d *Deployer) resolveRequire(req manifest.RequiredBundle) (loc string, found bool, err error) {
	if b, ok := d.cfg.Framework.GetBundleBySymbolicName(req.SymbolicName); ok && req.Range.Includes(b.Version()) {
		return "", false, nil
	}
	if loc, ok := d.definitionLocation(req); ok {
		return loc, true, nil
	}
	if art, ok := d.cfg.Store.FindBundle(req.SymbolicName, req.Range); ok {
		return art.Location, true, nil
	}
	if art, ok := d.cfg.Index.FindBundle(req.SymbolicName, req.Range); ok {
		return art.Location, true, nil
	}
	if req.Optional {
		return "", false, nil
	}
	return "", false, fmt.Errorf("%w: nothing provides required bundle %s %s",
		ErrUnknownArtifact, req.SymbolicName, req.Range)
}

// definitionLocation returns the highest-version already-registered
// definition providing the required bundle.
func (d *Deployer) definitionLocation(req manifest.RequiredBundle) (string, bool) {
	var bestLoc string
	var bestV manifest.Version
	found := false
	for _, loc := range d.cfg.Definitions.Locations() {
		def, ok := d.cfg.Definitions.Get(loc)
		if !ok {
			continue
		}
		m, err := manifest.Parse(def.ManifestText)
		if err != nil {
			continue
		}
		if m.SymbolicName != req.SymbolicName || !req.Range.Includes(m.Version) {
			continue
		}
		if !found || m.Version.Compare(bestV) > 0 {
			bestLoc, bestV, found = loc, m.Version, true
		}
	}
	return bestLoc, found
}

// Deploy fetches, verifies, resolves, installs and (optionally) starts
// the bundle at location in the node's framework, installing missing
// dependencies first. cb fires exactly once.
func (d *Deployer) Deploy(location string, start bool, cb func(error)) {
	d.EnsureClosure(location, func(order []string, err error) {
		if err != nil {
			cb(err)
			return
		}
		for _, loc := range order {
			b, installed := d.cfg.Framework.GetBundleByLocation(loc)
			if !installed {
				if b, err = d.cfg.Framework.InstallBundle(loc); err != nil {
					cb(err)
					return
				}
			}
			if loc == location && start {
				if err := b.Start(); err != nil {
					cb(err)
					return
				}
			}
		}
		cb(nil)
	})
}
