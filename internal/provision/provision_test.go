package provision

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dosgi/internal/manifest"
	"dosgi/internal/module"
	"dosgi/internal/netsim"
	"dosgi/internal/remote"
	"dosgi/internal/security"
	"dosgi/internal/services"
	"dosgi/internal/sim"
)

func sampleArtifact(t *testing.T, chunkSize int64) (Artifact, []byte) {
	t.Helper()
	img := SampleImages()[SampleGreetLibLocation]
	art, payload, err := NewArtifact(SampleGreetLibLocation, img,
		SampleSigner, SampleKeyring()[SampleSigner], chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	return art, payload
}

func TestImageRoundTripAndDigest(t *testing.T) {
	art, payload := sampleArtifact(t, 0)
	if art.ChunkSize != DefaultChunkSize {
		t.Fatalf("default chunk size = %d", art.ChunkSize)
	}
	if art.Size != int64(len(payload)) || art.Chunks != 1 {
		t.Fatalf("size=%d chunks=%d", art.Size, art.Chunks)
	}
	if art.SymbolicName != "com.example.greetlib" || art.Version != "1.2.0" {
		t.Fatalf("coordinates = %s/%s", art.SymbolicName, art.Version)
	}
	img, err := DecodeImage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if img.Classes["com.example.greetlib.Greeting"] != "hello, %s!" {
		t.Fatalf("classes = %v", img.Classes)
	}
	// Deterministic encoding: same image, same digest.
	_, payload2 := sampleArtifact(t, 0)
	if !bytes.Equal(payload, payload2) {
		t.Fatal("image encoding is not deterministic")
	}
}

func TestStoreChunkingRoundTrip(t *testing.T) {
	art, payload := sampleArtifact(t, 16)
	s := NewStore()
	if err := s.Add(art, payload); err != nil {
		t.Fatal(err)
	}
	if !s.Has(art.Digest) {
		t.Fatal("store lost the artifact")
	}
	var assembled []byte
	for i := int64(0); i < art.Chunks; i++ {
		chunk, ok := s.Chunk(art.Digest, i)
		if !ok {
			t.Fatalf("missing chunk %d", i)
		}
		if int64(len(chunk)) > art.ChunkSize {
			t.Fatalf("chunk %d oversized: %d", i, len(chunk))
		}
		assembled = append(assembled, chunk...)
	}
	if !bytes.Equal(assembled, payload) {
		t.Fatal("chunks do not reassemble the payload")
	}
	if _, ok := s.Chunk(art.Digest, art.Chunks); ok {
		t.Fatal("out-of-range chunk served")
	}
	got, ok := s.Payload(art.Digest)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("payload round trip failed")
	}

	// Tampered payloads never enter the store.
	bad := append([]byte(nil), payload...)
	bad[0] ^= 1
	if err := s.Add(art, bad); !errors.Is(err, ErrVerification) {
		t.Fatalf("tampered Add = %v", err)
	}
}

func TestStoreFindBundle(t *testing.T) {
	s := NewStore()
	key := SampleKeyring()[SampleSigner]
	for _, v := range []string{"1.0.0", "1.4.0", "2.0.0"} {
		img := &BundleImage{ManifestText: "Bundle-SymbolicName: lib\nBundle-Version: " + v + "\n"}
		art, payload, err := NewArtifact("app:lib-"+v, img, SampleSigner, key, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add(art, payload); err != nil {
			t.Fatal(err)
		}
	}
	art, ok := s.FindBundle("lib", manifest.MustParseVersionRange("[1.0,2.0)"))
	if !ok || art.Version != "1.4.0" {
		t.Fatalf("FindBundle picked %v (ok=%v), want 1.4.0", art.Version, ok)
	}
	if _, ok := s.FindBundle("lib", manifest.MustParseVersionRange("[3.0,4.0)")); ok {
		t.Fatal("FindBundle matched an impossible range")
	}
	if _, ok := s.FindBundle("ghost", manifest.AnyVersion); ok {
		t.Fatal("FindBundle matched an unknown bundle")
	}
}

func TestVerifierGates(t *testing.T) {
	art, payload := sampleArtifact(t, 0)
	keyring := SampleKeyring()

	t.Run("ok", func(t *testing.T) {
		if err := NewVerifier(keyring, nil).Verify(art, payload); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("corrupt-payload", func(t *testing.T) {
		bad := append([]byte(nil), payload...)
		bad[3] ^= 0x40
		if err := NewVerifier(keyring, nil).Verify(art, bad); !errors.Is(err, ErrVerification) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("forged-signature", func(t *testing.T) {
		forged := art
		forged.Signature = Sign([]byte("wrong-key"), art.Signer, art.Digest)
		if err := NewVerifier(keyring, nil).Verify(forged, payload); !errors.Is(err, ErrVerification) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unknown-signer", func(t *testing.T) {
		alien := art
		alien.Signer = "nobody"
		if err := NewVerifier(keyring, nil).Verify(alien, payload); !errors.Is(err, ErrVerification) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("policy-denied", func(t *testing.T) {
		policy := security.NewPolicy(false) // deny everything
		err := NewVerifier(keyring, policy).Verify(art, payload)
		if !errors.Is(err, ErrVerification) {
			t.Fatalf("got %v", err)
		}
		var denied *security.AccessDeniedError
		if !errors.As(err, &denied) {
			t.Fatalf("cause = %v", err)
		}
	})
	t.Run("policy-granted", func(t *testing.T) {
		policy := security.NewPolicy(false)
		policy.Grant(SampleSigner, DeployPermission("app:*"))
		if err := NewVerifier(keyring, policy).Verify(art, payload); err != nil {
			t.Fatal(err)
		}
	})
}

// repoHandler serves a RepoService over a transport without a framework:
// the reflection dispatch is the same one the real Dispatcher uses.
type repoHandler struct {
	svc    *RepoService
	served *int // Chunk requests answered
}

func (h repoHandler) Serve(req *remote.Request) *remote.Response {
	if req.Method == "Chunk" {
		*h.served++
	}
	results, err := remote.InvokeService(h.svc, req.Method, req.Args)
	if err != nil {
		return &remote.Response{Corr: req.Corr, Status: remote.StatusAppError, Err: err.Error()}
	}
	return &remote.Response{Corr: req.Corr, Status: remote.StatusOK, Results: results}
}

// fetchRig is a netsim client plus n repository servers.
type fetchRig struct {
	eng     *sim.Engine
	servers []*remote.NetsimServer
	stores  []*Store
	served  []int
	fetcher *Fetcher
	eps     []remote.Endpoint
}

func newFetchRig(t *testing.T, nServers int, counters *services.ProvisionCounters) *fetchRig {
	t.Helper()
	rig := &fetchRig{eng: sim.New(99), served: make([]int, nServers)}
	net := netsim.NewNetwork(rig.eng)
	for i := 0; i < nServers; i++ {
		id := fmt.Sprintf("srv%d", i+1)
		ip := netsim.IP(fmt.Sprintf("10.0.0.%d", i+1))
		nic := net.AttachNode(id)
		if err := net.AssignIP(ip, id); err != nil {
			t.Fatal(err)
		}
		store := NewStore()
		srv := remote.NewNetsimServer(nic, netsim.Addr{IP: ip, Port: 7100},
			repoHandler{svc: NewRepoService(store), served: &rig.served[i]})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		rig.servers = append(rig.servers, srv)
		rig.stores = append(rig.stores, store)
		rig.eps = append(rig.eps, remote.Endpoint{Node: id, Addr: string(ip) + ":7100"})
	}
	clientNIC := net.AttachNode("client")
	if err := net.AssignIP("10.0.0.100", "client"); err != nil {
		t.Fatal(err)
	}
	transport := remote.NewNetsimTransport(rig.eng, clientNIC, "10.0.0.100",
		remote.WithNetsimCallTimeout(20*time.Millisecond))
	opts := []FetcherOption{}
	if counters != nil {
		opts = append(opts, WithCounters(counters))
	}
	rig.fetcher = NewFetcher(remote.NewPool(transport), StaticReplicas{Eps: rig.eps}, opts...)
	return rig
}

func TestFetcherMidTransferFailover(t *testing.T) {
	counters := &services.ProvisionCounters{}
	rig := newFetchRig(t, 2, counters)

	// A multi-chunk artifact held by both servers.
	art, payload := sampleArtifact(t, 8)
	if art.Chunks < 16 {
		t.Fatalf("want a long transfer, got %d chunks", art.Chunks)
	}
	for _, s := range rig.stores {
		if err := s.Add(art, payload); err != nil {
			t.Fatal(err)
		}
	}

	var got []byte
	var fetchErr error
	done := false
	rig.fetcher.Fetch(art, func(p []byte, err error) { got, fetchErr, done = p, err, true })

	// Kill server 1 mid-transfer: in-flight chunk requests time out and
	// the fetch resumes — not restarts — on server 2.
	rig.eng.RunFor(2 * time.Millisecond)
	if rig.served[0] == 0 || done {
		t.Fatalf("transfer not mid-flight: served=%d done=%v", rig.served[0], done)
	}
	rig.servers[0].Stop()
	rig.eng.RunFor(time.Second)

	if !done || fetchErr != nil {
		t.Fatalf("fetch after failover: done=%v err=%v", done, fetchErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across failover")
	}
	if counters.FetchRetries.Load() != 1 {
		t.Fatalf("fetchRetries = %d, want 1", counters.FetchRetries.Load())
	}
	// Resume, not restart: server 2 served only the chunks server 1 had
	// not completed.
	if int64(rig.served[1]) >= art.Chunks {
		t.Fatalf("server 2 served %d of %d chunks — the transfer restarted",
			rig.served[1], art.Chunks)
	}
	if total := counters.BytesTransferred.Load(); total != art.Size {
		t.Fatalf("bytesTransferred = %d, want exactly the payload size %d", total, art.Size)
	}
}

func TestFetcherCorruptReplicaFallsBack(t *testing.T) {
	counters := &services.ProvisionCounters{}
	rig := newFetchRig(t, 2, counters)
	art, payload := sampleArtifact(t, 8)
	for _, s := range rig.stores {
		if err := s.Add(art, payload); err != nil {
			t.Fatal(err)
		}
	}
	if !rig.stores[0].CorruptChunk(art.Digest, 2) {
		t.Fatal("corruption failed")
	}

	var got []byte
	var fetchErr error
	rig.fetcher.Fetch(art, func(p []byte, err error) { got, fetchErr = p, err })
	rig.eng.RunFor(time.Second)
	if fetchErr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("fetch = err %v", fetchErr)
	}
	if counters.VerificationRejections.Load() != 1 {
		t.Fatalf("rejections = %d, want 1", counters.VerificationRejections.Load())
	}

	// Both replicas corrupt: the fetch fails verification outright.
	rig2 := newFetchRig(t, 2, nil)
	for _, s := range rig2.stores {
		if err := s.Add(art, payload); err != nil {
			t.Fatal(err)
		}
		s.CorruptChunk(art.Digest, 0)
	}
	var finalErr error
	rig2.fetcher.Fetch(art, func(_ []byte, err error) { finalErr = err })
	rig2.eng.RunFor(time.Second)
	if !errors.Is(finalErr, ErrVerification) {
		t.Fatalf("all-corrupt fetch = %v, want ErrVerification", finalErr)
	}
}

func TestFetcherNoReplica(t *testing.T) {
	f := NewFetcher(remote.NewPool(nil), StaticReplicas{})
	art, _ := sampleArtifact(t, 0)
	var err error
	f.Fetch(art, func(_ []byte, e error) { err = e })
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("got %v", err)
	}
}

// localIndex satisfies Index from a store (unit tests have no directory).
type localIndex struct{ s *Store }

func (ix localIndex) ArtifactAt(loc string) (Artifact, bool) { return ix.s.ArtifactAt(loc) }
func (ix localIndex) FindBundle(name string, rng manifest.VersionRange) (Artifact, bool) {
	return ix.s.FindBundle(name, rng)
}

func TestDeployerResolvesRequireBundleClosure(t *testing.T) {
	store := NewStore()
	arts, payloads, err := SampleArtifacts(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, art := range arts {
		if err := store.Add(art, payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	defs := module.NewDefinitionRegistry()
	fw := module.New(module.WithName("unit"), module.WithDefinitions(defs))
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployer(DeployerConfig{
		Store:       store,
		Fetcher:     NewFetcher(remote.NewPool(nil), StaticReplicas{}),
		Verifier:    NewVerifier(SampleKeyring(), nil),
		Index:       localIndex{s: store},
		Definitions: defs,
		Framework:   fw,
	})
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	dep.EnsureClosure(SampleGreeterLocation, func(locs []string, err error) {
		if err != nil {
			t.Fatal(err)
		}
		order = locs
	})
	if len(order) != 2 || order[0] != SampleGreetLibLocation || order[1] != SampleGreeterLocation {
		t.Fatalf("closure order = %v, want [greetlib greeter]", order)
	}

	var deployErr error
	dep.Deploy(SampleGreeterLocation, true, func(err error) { deployErr = err })
	if deployErr != nil {
		t.Fatal(deployErr)
	}
	b, ok := fw.GetBundleByLocation(SampleGreeterLocation)
	if !ok || b.State() != module.StateActive {
		t.Fatal("greeter not active")
	}
	// The activator loaded the format class through the Require-Bundle
	// wiring and registered the service.
	ref, ok := fw.SystemContext().ServiceReference("com.example.greeter.Greeter")
	if !ok {
		t.Fatal("greeter service missing")
	}
	svc, err := fw.SystemContext().GetService(ref)
	if err != nil {
		t.Fatal(err)
	}
	type helloer interface{ Hello(string) string }
	if got := svc.(helloer).Hello("unit"); !strings.Contains(got, "hello, unit!") {
		t.Fatalf("greeting = %q", got)
	}
}

func TestDeployerErrors(t *testing.T) {
	store := NewStore()
	defs := module.NewDefinitionRegistry()
	fw := module.New(module.WithDefinitions(defs))
	if err := fw.Start(); err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployer(DeployerConfig{
		Store:       store,
		Fetcher:     NewFetcher(remote.NewPool(nil), StaticReplicas{}),
		Verifier:    NewVerifier(SampleKeyring(), nil),
		Index:       localIndex{s: store},
		Definitions: defs,
		Framework:   fw,
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("unknown-location", func(t *testing.T) {
		var got error
		dep.Deploy("app:ghost", true, func(err error) { got = err })
		if !errors.Is(got, ErrUnknownArtifact) {
			t.Fatalf("got %v", got)
		}
	})
	t.Run("unresolvable-require", func(t *testing.T) {
		img := &BundleImage{ManifestText: "Bundle-SymbolicName: orphan\nBundle-Version: 1.0.0\n" +
			"Require-Bundle: com.example.nothere\n"}
		art, payload, err := NewArtifact("app:orphan", img, SampleSigner, SampleKeyring()[SampleSigner], 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(art, payload); err != nil {
			t.Fatal(err)
		}
		var got error
		dep.Deploy("app:orphan", true, func(err error) { got = err })
		if !errors.Is(got, ErrUnknownArtifact) || !strings.Contains(got.Error(), "com.example.nothere") {
			t.Fatalf("got %v", got)
		}
	})
	t.Run("missing-activator-factory", func(t *testing.T) {
		img := &BundleImage{ManifestText: "Bundle-SymbolicName: noact\nBundle-Version: 1.0.0\n" +
			"Bundle-Activator: com.example.unregistered.Activator\n"}
		art, payload, err := NewArtifact("app:noact", img, SampleSigner, SampleKeyring()[SampleSigner], 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Add(art, payload); err != nil {
			t.Fatal(err)
		}
		var got error
		dep.EnsureDefinition("app:noact", func(err error) { got = err })
		if got == nil || !strings.Contains(got.Error(), "no activator factory") {
			t.Fatalf("got %v", got)
		}
	})
}
