package provision

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dosgi/internal/security"
)

// Keyring maps signer subjects to their signing keys. The reconstruction
// of the certificate store of Parrend & Frénot's secure deployment: an
// artifact is trusted when its signature verifies under the key of a
// signer subject the policy allows to deploy.
type Keyring map[string][]byte

// Sign computes the artifact signature for (signer, digest) under key: an
// HMAC-SHA256 over the signer subject and the content digest, hex-encoded.
func Sign(key []byte, signer, digest string) string {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(signer))
	mac.Write([]byte{0})
	mac.Write([]byte(digest))
	return hex.EncodeToString(mac.Sum(nil))
}

// Verifier is the gate every artifact passes before installation: the
// payload must match the advertised content digest, the signature must
// verify under the keyring, and the signer subject must hold the deploy
// permission for the install location in the security policy.
type Verifier struct {
	keyring Keyring
	policy  *security.Policy
}

// NewVerifier builds a verifier. A nil policy skips the policy check
// (the stance of a framework with no SecurityManager installed); an
// artifact whose signer has no keyring entry always fails.
func NewVerifier(keyring Keyring, policy *security.Policy) *Verifier {
	return &Verifier{keyring: keyring, policy: policy}
}

// DeployPermission is the permission an artifact's signer subject must
// hold to install at location.
func DeployPermission(location string) security.Permission {
	return security.NewPermission(security.PermAdmin, location, security.ActionDeploy)
}

// Verify checks payload against art. Any non-nil return wraps
// ErrVerification.
func (v *Verifier) Verify(art Artifact, payload []byte) error {
	if int64(len(payload)) != art.Size {
		return fmt.Errorf("%w: %s: payload is %d bytes, expected %d",
			ErrVerification, art.Location, len(payload), art.Size)
	}
	if got := PayloadDigest(payload); got != art.Digest {
		return fmt.Errorf("%w: %s: digest mismatch (got %s, want %s)",
			ErrVerification, art.Location, short(got), short(art.Digest))
	}
	key, ok := v.keyring[art.Signer]
	if !ok {
		return fmt.Errorf("%w: %s: unknown signer %q", ErrVerification, art.Location, art.Signer)
	}
	want := Sign(key, art.Signer, art.Digest)
	if !hmac.Equal([]byte(want), []byte(art.Signature)) {
		return fmt.Errorf("%w: %s: bad signature from %q", ErrVerification, art.Location, art.Signer)
	}
	if v.policy != nil {
		if err := v.policy.Check(art.Signer, DeployPermission(art.Location)); err != nil {
			return fmt.Errorf("%w: %w", ErrVerification, err)
		}
	}
	return nil
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
