package provision

import (
	"fmt"

	"dosgi/internal/module"
)

// Built-in sample artifacts: a greeter bundle requiring a greetlib
// library bundle. They exercise the full provisioning path — signed
// publish, dependency resolution through the index, activator factory
// lookup, exported-service registration — and back the dosgid REPO SEED
// verb, the examples/provision demo and the dependability tests.
const (
	// SampleSigner is the development signer subject of the samples.
	SampleSigner = "dev"
	// SampleGreeterLocation installs the greeter bundle.
	SampleGreeterLocation = "app:greeter"
	// SampleGreetLibLocation installs the greeting-format library.
	SampleGreetLibLocation = "app:greetlib"
	// SampleGreeterService is the exported name the greeter registers.
	SampleGreeterService = "greet"

	sampleActivatorClass = "com.example.greeter.Activator"
	sampleFormatClass    = "com.example.greetlib.Greeting"
)

// SampleKeyring holds the development signing key of SampleSigner.
func SampleKeyring() Keyring {
	return Keyring{SampleSigner: []byte("dosgi-dev-signing-key")}
}

// SampleImages returns the location → image map of the sample bundles.
func SampleImages() map[string]*BundleImage {
	return map[string]*BundleImage{
		SampleGreetLibLocation: {
			ManifestText: "Bundle-SymbolicName: com.example.greetlib\n" +
				"Bundle-Version: 1.2.0\n" +
				"Export-Package: com.example.greetlib;version=\"1.2.0\"\n",
			Classes: map[string]string{sampleFormatClass: "hello, %s!"},
		},
		SampleGreeterLocation: {
			ManifestText: "Bundle-SymbolicName: com.example.greeter\n" +
				"Bundle-Version: 1.0.0\n" +
				"Bundle-Activator: " + sampleActivatorClass + "\n" +
				"Require-Bundle: com.example.greetlib;bundle-version=\"[1.0,2.0)\"\n",
			Classes: map[string]string{"com.example.greeter.Main": "main"},
		},
	}
}

// SampleArtifacts builds the signed sample artifacts with the development
// keyring, dependency-first. chunkSize ≤ 0 selects DefaultChunkSize.
func SampleArtifacts(chunkSize int64) (arts []Artifact, payloads [][]byte, err error) {
	key := SampleKeyring()[SampleSigner]
	images := SampleImages()
	for _, loc := range []string{SampleGreetLibLocation, SampleGreeterLocation} {
		art, payload, err := NewArtifact(loc, images[loc], SampleSigner, key, chunkSize)
		if err != nil {
			return nil, nil, err
		}
		arts = append(arts, art)
		payloads = append(payloads, payload)
	}
	return arts, payloads, nil
}

// greeterService is the exported service the sample activator registers.
type greeterService struct {
	format string
	node   string
}

// Hello formats a greeting, stamped with the serving framework so demos
// can see which node answered after a failover.
func (g greeterService) Hello(name string) string {
	return fmt.Sprintf(g.format, name) + " [served by " + g.node + "]"
}

func init() {
	RegisterActivator(sampleActivatorClass, func() module.Activator {
		var reg *module.ServiceRegistration
		return &module.ActivatorFuncs{
			OnStart: func(ctx *module.Context) error {
				// Load the greeting format through the bundle wiring: the
				// class lives in greetlib, reached via Require-Bundle, so
				// a start proves dependency resolution actually wired.
				cls, err := ctx.Bundle().LoadClass(sampleFormatClass)
				if err != nil {
					return err
				}
				format, ok := cls.Value.(string)
				if !ok {
					return fmt.Errorf("greeter: unexpected payload %T for %s", cls.Value, sampleFormatClass)
				}
				reg, err = ctx.RegisterSingle("com.example.greeter.Greeter",
					greeterService{format: format, node: ctx.Framework().Name()},
					module.Properties{
						module.PropServiceExported:     true,
						module.PropServiceExportedName: SampleGreeterService,
					})
				return err
			},
			OnStop: func(ctx *module.Context) error {
				if reg != nil {
					_ = reg.Unregister()
				}
				return nil
			},
		}
	})
}
