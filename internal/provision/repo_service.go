package provision

import (
	"encoding/json"
	"fmt"

	"dosgi/internal/manifest"
)

// RepoService is the provider side of the provisioning verbs: every
// repository node registers it with service.exported=true under
// ServiceName, so fetchers reach it through the standard remote stack
// (dispatch by reflection, wire types only). Errors travel as application
// errors, which the fetcher treats as "this replica cannot serve the
// artifact" and fails over.
type RepoService struct {
	store *Store
}

// NewRepoService serves store.
func NewRepoService(store *Store) *RepoService {
	return &RepoService{store: store}
}

// Describe returns the JSON metadata of the artifact installed at
// location.
func (s *RepoService) Describe(location string) ([]byte, error) {
	art, ok := s.store.ArtifactAt(location)
	if !ok {
		return nil, fmt.Errorf("unknown artifact at %q", location)
	}
	return json.Marshal(art)
}

// DescribeDigest returns the JSON metadata of digest.
func (s *RepoService) DescribeDigest(digest string) ([]byte, error) {
	art, ok := s.store.Describe(digest)
	if !ok {
		return nil, fmt.Errorf("unknown artifact %s", short(digest))
	}
	return json.Marshal(art)
}

// Find returns the JSON metadata of the highest-version stored artifact
// satisfying (symbolicName, versionRange) — the dependency-resolution
// probe.
func (s *RepoService) Find(symbolicName, versionRange string) ([]byte, error) {
	rng, err := manifest.ParseVersionRange(versionRange)
	if err != nil {
		return nil, err
	}
	art, ok := s.store.FindBundle(symbolicName, rng)
	if !ok {
		return nil, fmt.Errorf("no artifact provides %s %s", symbolicName, versionRange)
	}
	return json.Marshal(art)
}

// Chunk returns chunk index of digest.
func (s *RepoService) Chunk(digest string, index int64) ([]byte, error) {
	chunk, ok := s.store.Chunk(digest, index)
	if !ok {
		return nil, fmt.Errorf("no chunk %d of artifact %s", index, short(digest))
	}
	return chunk, nil
}

// Locations lists the install locations stored here, sorted.
func (s *RepoService) Locations() []string {
	arts := s.store.List()
	out := make([]string, 0, len(arts))
	for _, art := range arts {
		out = append(out, art.Location)
	}
	return out
}

// UnmarshalArtifact parses the JSON metadata the describe verbs return.
func UnmarshalArtifact(data []byte) (Artifact, error) {
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return Artifact{}, fmt.Errorf("provision: decoding artifact metadata: %w", err)
	}
	return art, nil
}
