module dosgi

go 1.24
