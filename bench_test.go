// Package dosgi's root benchmark harness: one benchmark per experiment of
// DESIGN.md's index (E1–E9 reproduce the paper's figures and measurable
// claims; A1–A4 are design ablations). Experiments run on the deterministic
// discrete-event simulator, so benchmark wall-time measures harness cost
// while the *reported metrics* (ReportMetric) carry the experiment results
// in simulated units. Regenerate EXPERIMENTS.md data with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/cluster-sim -experiment all
package dosgi_test

import (
	"fmt"
	"testing"
	"time"

	"dosgi/internal/experiments"
	"dosgi/internal/migrate"
	"dosgi/internal/module"
)

func BenchmarkE1ArchitectureComparison(b *testing.B) {
	var rows []experiments.E1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E1ArchitectureComparison(16)
	}
	b.ReportMetric(rows[0].MemoryMB, "multijvm-MB")
	b.ReportMetric(rows[2].MemoryMB, "vosgi-MB")
	b.ReportMetric(float64(rows[0].MgmtOp.Microseconds()), "remote-mgmt-us")
}

func BenchmarkE2SharedServices(b *testing.B) {
	var res experiments.E2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.E2SharedServices(8, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.BundlesDuplicated), "bundles-duplicated")
	b.ReportMetric(float64(res.BundlesShared), "bundles-shared")
}

func BenchmarkE3MigrationIPTakeover(b *testing.B) {
	var res experiments.E3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.E3Migration()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PlannedDowntime.Milliseconds()), "planned-downtime-ms")
	b.ReportMetric(float64(res.CrashFailover.Milliseconds()), "crash-failover-ms")
	b.ReportMetric(float64(res.RestartInPlace.Milliseconds()), "restart-ms")
}

func BenchmarkE4IpvsScaleOut(b *testing.B) {
	var rows []experiments.E4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E4IpvsScaleOut([]int{1, 2, 4}, 100, 30*time.Millisecond, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Throughput, "replicas1-rps")
	b.ReportMetric(rows[len(rows)-1].Throughput, "replicas4-rps")
}

func BenchmarkE5MonitoringAccuracy(b *testing.B) {
	var rows []experiments.E5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.E5MonitoringAccuracy(50 * time.Millisecond)
	}
	b.ReportMetric(rows[0].ErrorPct, "longtask-err-pct")
	b.ReportMetric(rows[1].ErrorPct, "shorttask-err-pct")
}

func BenchmarkE6SLAEnforcement(b *testing.B) {
	var res experiments.E6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.E6SLAEnforcement()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VictimP99NoPolicy.Milliseconds()), "victim-p99-nopolicy-ms")
	b.ReportMetric(float64(res.VictimP99WithPolicy.Milliseconds()), "victim-p99-policy-ms")
	b.ReportMetric(float64(res.TimeToEnforce.Milliseconds()), "time-to-enforce-ms")
}

func BenchmarkE7Consolidation(b *testing.B) {
	var res experiments.E7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.E7Consolidation(3, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.NodesBefore), "nodes-before")
	b.ReportMetric(float64(res.NodesAfter), "nodes-after")
}

func BenchmarkE8GracefulDegradation(b *testing.B) {
	var rows []experiments.E8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E8GracefulDegradation(4, 6, migrate.BestEffort, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Running), "running-after-2-crashes")
}

func BenchmarkE9GCSCharacteristics(b *testing.B) {
	var rows []experiments.E9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E9GCSCharacteristics([]int{2, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].ViewChangeTime.Milliseconds()), "viewchange16-ms")
	b.ReportMetric(float64(rows[len(rows)-1].BroadcastTime.Milliseconds()), "broadcast16-ms")
}

// BenchmarkE10RemoteInvocation measures the remote service invocation
// layer: wall-clock throughput and tail latency of pipelined pooled
// connections against the one-connection-per-call baseline and the
// batched pipelined mode (per-call latencies recorded with time.Since at
// nanosecond resolution — not simulated time, which quantizes).
func BenchmarkE10RemoteInvocation(b *testing.B) {
	var rows []experiments.E10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E10RemoteInvocation(5000, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Throughput, "pipelined-rps")
	b.ReportMetric(float64(rows[0].P99.Microseconds()), "pipelined-p99-us")
	b.ReportMetric(rows[1].Throughput, "percall-rps")
	b.ReportMetric(float64(rows[1].P99.Microseconds()), "percall-p99-us")
	b.ReportMetric(rows[2].Throughput, "batched-rps")
	b.ReportMetric(float64(rows[2].P99.Microseconds()), "batched-p99-us")
	b.ReportMetric(float64(rows[2].P999.Microseconds()), "batched-p999-us")
}

// BenchmarkE11ArtifactTransfer measures chunked artifact provisioning
// throughput across chunk sizes: a 4 MiB artifact fetched over netsim
// with a pipelined chunk window. MB/s is in simulated units; allocs/op is
// the real harness cost of one full transfer.
func BenchmarkE11ArtifactTransfer(b *testing.B) {
	for _, cs := range []int64{4 << 10, 64 << 10, 1 << 20} {
		name := fmt.Sprintf("chunk=%dKiB", cs>>10)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var rows []experiments.E11Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.E11ArtifactTransfer(4<<20, []int64{cs}, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].MBps, "MB/s")
			b.ReportMetric(float64(rows[0].Chunks), "chunks")
		})
	}
}

// BenchmarkE12EventBackpressure measures event delivery with one fast
// and one slow subscriber on real TCP, before and after credit-based
// backpressure: the fast subscriber's throughput and p99 notify latency
// must survive the slow peer, while the slow subscriber's client-side
// push queue shrinks from "the whole burst" to "the credit window".
// Latencies here are real microseconds (wall clock), not simulated.
func BenchmarkE12EventBackpressure(b *testing.B) {
	var rows []experiments.E12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E12EventBackpressure(2000, 64, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Throughput, "nobp-fast-eps")
	b.ReportMetric(float64(rows[0].P99.Microseconds()), "nobp-fast-p99-us")
	b.ReportMetric(float64(rows[0].SlowPeakQueue), "nobp-slow-peak-queue")
	b.ReportMetric(rows[1].Throughput, "bp-fast-eps")
	b.ReportMetric(float64(rows[1].P99.Microseconds()), "bp-fast-p99-us")
	b.ReportMetric(float64(rows[1].SlowPeakQueue), "bp-slow-peak-queue")
}

// BenchmarkE13DirectorySharding measures directory convergence for a
// single replicated group against the rendezvous-sharded layout on the
// deterministic simulator: convergence time and the hottest node's GCS
// message count while the endpoint population fills. The benchmark runs
// the 10k-endpoint column (the 100k column lives in `make bench-json` /
// BENCH_directory.json); metrics are simulated units, so they are
// identical on every machine.
func BenchmarkE13DirectorySharding(b *testing.B) {
	var rows []experiments.E13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.E13DirectorySharding([]int{10000}, []int{1, 4, 16}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].MaxNodeSent), "1shard-max-node-sent")
	b.ReportMetric(float64(rows[1].MaxNodeSent), "4shard-max-node-sent")
	b.ReportMetric(float64(rows[2].MaxNodeSent), "16shard-max-node-sent")
	b.ReportMetric(float64(rows[2].Converge.Microseconds()), "16shard-converge-us")
}

// BenchmarkA1DelegationLookup measures class lookup cost: local class,
// wired import, and parent delegation through a virtual framework (the
// ablation behind Figure 4's lookup chain).
func BenchmarkA1DelegationLookup(b *testing.B) {
	defs := module.NewDefinitionRegistry()
	defs.MustAdd("base", &module.Definition{
		ManifestText: "Bundle-SymbolicName: base\nBundle-Version: 1.0.0\nExport-Package: base.api\n",
		Classes:      map[string]any{"base.api.Svc": "svc"},
	})
	defs.MustAdd("app", &module.Definition{
		ManifestText: "Bundle-SymbolicName: app\nBundle-Version: 1.0.0\nImport-Package: base.api\n",
		Classes:      map[string]any{"app.Main": "main"},
	})
	host := module.New(module.WithDefinitions(defs))
	if err := host.Start(); err != nil {
		b.Fatal(err)
	}
	baseBundle, err := host.InstallBundle("base")
	if err != nil {
		b.Fatal(err)
	}
	if err := baseBundle.Start(); err != nil {
		b.Fatal(err)
	}
	appBundle, err := host.InstallBundle("app")
	if err != nil {
		b.Fatal(err)
	}
	if err := appBundle.Start(); err != nil {
		b.Fatal(err)
	}

	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := appBundle.LoadClass("app.Main"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wired-import", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := appBundle.LoadClass("base.api.Svc"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parent-delegation", func(b *testing.B) {
		// The child's bundle carries no Import-Package for base.api, so
		// its lookup misses locally and falls through to the explicit
		// parent delegation — the Figure 4 path.
		defs.MustAdd("app-child", &module.Definition{
			ManifestText: "Bundle-SymbolicName: app.child\nBundle-Version: 1.0.0\n",
			Classes:      map[string]any{"app.child.Main": "main"},
		})
		child := newChildWithDelegation(b, host)
		tb, err := child.InstallBundle("app-child")
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Start(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tb.LoadClass("base.api.Svc"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkA2IpvsSchedulers(b *testing.B) {
	var rows []experiments.A2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.A2IpvsSchedulers(100, 25*time.Millisecond, 4*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].P99.Milliseconds()), "rr-p99-ms")
	b.ReportMetric(float64(rows[1].P99.Milliseconds()), "wrr-p99-ms")
	b.ReportMetric(float64(rows[2].P99.Milliseconds()), "lc-p99-ms")
}

func BenchmarkA3FailureDetector(b *testing.B) {
	var rows []experiments.A3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.A3FailureDetector([]time.Duration{
			100 * time.Millisecond, 400 * time.Millisecond, 1600 * time.Millisecond,
		}, 0.30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].DetectionLatency.Milliseconds()), "t100ms-detect-ms")
	b.ReportMetric(float64(rows[0].FalseSuspicions), "t100ms-false")
	b.ReportMetric(float64(rows[2].DetectionLatency.Milliseconds()), "t1600ms-detect-ms")
	b.ReportMetric(float64(rows[2].FalseSuspicions), "t1600ms-false")
}

func BenchmarkA4BroadcastOrdering(b *testing.B) {
	var res experiments.A4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.A4BroadcastOrdering(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DivergentFIFO), "fifo-divergent")
	b.ReportMetric(float64(res.DivergentTotal), "total-divergent")
}

// newChildWithDelegation builds a started virtual framework delegating
// base.api to the host. Kept in the benchmark file to avoid an import of
// internal/vosgi in the public harness beyond this ablation.
func newChildWithDelegation(b *testing.B, host *module.Framework) *module.Framework {
	b.Helper()
	vf, err := newVirtual(host)
	if err != nil {
		b.Fatal(err)
	}
	return vf
}
